// Package stats provides the small statistical toolkit used throughout the
// Flex reproduction: percentiles, box-plot summaries (for Figures 9 and 10),
// mean/standard deviation (for Figure 12 whiskers), and histograms.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs, or 0 when xs has
// fewer than two elements.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Box is a five-number summary used to render the box-and-whisker plots in
// the paper's Figures 9 and 10.
type Box struct {
	Min    float64
	P25    float64
	Median float64
	P75    float64
	Max    float64
}

// BoxOf computes the five-number summary of xs.
func BoxOf(xs []float64) Box {
	if len(xs) == 0 {
		return Box{}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return Box{
		Min:    sorted[0],
		P25:    percentileSorted(sorted, 25),
		Median: percentileSorted(sorted, 50),
		P75:    percentileSorted(sorted, 75),
		Max:    sorted[len(sorted)-1],
	}
}

// String renders the box in a compact, fixed-precision form.
func (b Box) String() string {
	return fmt.Sprintf("min=%.2f p25=%.2f med=%.2f p75=%.2f max=%.2f",
		b.Min, b.P25, b.Median, b.P75, b.Max)
}

// MeanStd is a mean ± standard-deviation pair (Figure 12 whiskers).
type MeanStd struct {
	Mean float64
	Std  float64
}

// MeanStdOf computes mean and population standard deviation of xs.
func MeanStdOf(xs []float64) MeanStd {
	return MeanStd{Mean: Mean(xs), Std: StdDev(xs)}
}

// String renders the pair as "mean±std" with two decimals.
func (m MeanStd) String() string {
	return fmt.Sprintf("%.2f±%.2f", m.Mean, m.Std)
}

// Histogram is a fixed-width bucket histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi  float64
	Buckets []int
	Under   int // samples below Lo
	Over    int // samples at or above Hi
	Count   int
}

// NewHistogram creates a histogram with n equal-width buckets over [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int, n)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	h.Count++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Buckets)))
		if i == len(h.Buckets) { // guard FP edge
			i--
		}
		h.Buckets[i]++
	}
}

// FractionAtOrAbove returns the fraction of samples >= x.
func (h *Histogram) FractionAtOrAbove(x float64) float64 {
	if h.Count == 0 {
		return 0
	}
	n := h.Over
	width := (h.Hi - h.Lo) / float64(len(h.Buckets))
	for i, c := range h.Buckets {
		lo := h.Lo + float64(i)*width
		if lo >= x {
			n += c
		}
	}
	return float64(n) / float64(h.Count)
}

// Nines converts an availability fraction (e.g. 0.9999) into its
// "number of nines" (e.g. 4.0). Returns +Inf for availability >= 1.
func Nines(availability float64) float64 {
	if availability >= 1 {
		return math.Inf(1)
	}
	if availability <= 0 {
		return 0
	}
	return -math.Log10(1 - availability)
}
