package fleet

import (
	"encoding/json"
	"net/http"
)

// Handler returns the /fleet endpoint: the latest aggregated snapshot as
// JSON, with ?room=NAME narrowing to one room's status. Mount it on the
// obs surface via obs.ServerConfig.Fleet.
func (f *Fleet) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		snap := f.Snapshot()
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if room := r.URL.Query().Get("room"); room != "" {
			for i := range snap.Rooms {
				if snap.Rooms[i].Name == room {
					_ = enc.Encode(snap.Rooms[i])
					return
				}
			}
			http.Error(w, "unknown room "+room, http.StatusNotFound)
			return
		}
		_ = enc.Encode(snap)
	})
}
