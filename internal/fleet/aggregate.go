package fleet

import (
	"context"
	"time"

	"flex/internal/obs/slo"
	"flex/internal/power"
)

// RoomStatus is one shard's slice of a fleet snapshot.
type RoomStatus struct {
	Name string `json:"name"`
	// State is the shard's health verdict (ready/degraded/unsafe).
	State slo.State `json:"state"`
	// Reasons explain any non-ready state.
	Reasons []string `json:"reasons,omitempty"`
	// Stranded is the room's Eq. 5 stranded power.
	Stranded power.Watts `json:"stranded_watts"`
	// Allocatable is the room's allocatable power.
	Allocatable power.Watts `json:"allocatable_watts"`
	// CommittedHeadroom is the power recovered by enforced, unrestored
	// actions (deduped across the shard's primaries).
	CommittedHeadroom power.Watts `json:"committed_headroom_watts"`
	// ActedRacks counts racks currently under an enforced action.
	ActedRacks int `json:"acted_racks"`
	// OpenEpisode is true while any primary has an overdraw episode open.
	OpenEpisode bool `json:"open_episode"`
	// EpisodeAge is how long the oldest open episode has been running.
	EpisodeAge time.Duration `json:"episode_age_ns"`
	// TelemetryAge is the staleness of the shard's least-fresh UPS
	// reading; negative when the shard has never received a sample.
	TelemetryAge time.Duration `json:"telemetry_age_ns"`
	// Dropped counts samples evicted from the shard's ingest queues.
	Dropped int `json:"dropped_samples"`
	// Pumped counts samples moved into the shard's views.
	Pumped uint64 `json:"pumped_samples"`
	// Steps counts shard evaluation rounds.
	Steps uint64 `json:"steps"`
}

// Snapshot is the fleet-level fold the aggregator produces.
type Snapshot struct {
	At    time.Time    `json:"at"`
	Rooms []RoomStatus `json:"rooms"`
	// State is the fleet verdict: the worst shard state, lifted to at
	// least degraded when the snapshot itself has gone stale.
	State slo.State `json:"state"`
	// Ready counts shards in StateReady.
	Ready int `json:"ready"`
	// StrandedPower is the fleet total of per-room Eq. 5 stranded power.
	StrandedPower power.Watts `json:"stranded_watts"`
	// AllocatablePower is the fleet total allocatable power.
	AllocatablePower power.Watts `json:"allocatable_watts"`
	// CommittedHeadroom totals the rooms' committed recovered power.
	CommittedHeadroom power.Watts `json:"committed_headroom_watts"`
	// DroppedSamples totals ingest-queue evictions across shards.
	DroppedSamples int `json:"dropped_samples"`
	// Stages digests the fleet's critical-path latency histograms
	// (per-stage count/p50/p99 with exemplar joins), in timeline order.
	// Nil when the fleet has no registry.
	Stages []StageSummary `json:"stages,omitempty"`
}

// roomStatus computes one shard's status at time now.
func (f *Fleet) roomStatus(s *Shard, now time.Time) RoomStatus {
	st := RoomStatus{
		Name:        s.Name,
		Stranded:    s.cfg.Stranded,
		Allocatable: s.cfg.Allocatable,
		Dropped:     s.Dropped(),
		Pumped:      s.Pumped(),
		Steps:       s.Steps(),
	}
	headroom, acted := s.committedHeadroom()
	st.CommittedHeadroom = power.Watts(headroom)
	st.ActedRacks = acted

	age, seen := s.upsView.Oldest(now)
	if seen {
		st.TelemetryAge = age
	} else {
		st.TelemetryAge = -1
	}
	open, since := s.openEpisode()
	st.OpenEpisode = open
	if open {
		st.EpisodeAge = now.Sub(since)
	}

	switch {
	case open && st.EpisodeAge > power.FlexLatencyBudget:
		// The invariant is at risk: an overdraw has outlived the battery
		// budget without clearing.
		st.State = slo.StateUnsafe
		st.Reasons = append(st.Reasons, "open overdraw episode past the 10s budget")
	case open:
		st.State = slo.StateDegraded
		st.Reasons = append(st.Reasons, "overdraw episode open")
	case !seen:
		st.State = slo.StateDegraded
		st.Reasons = append(st.Reasons, "no UPS telemetry received")
	case age > f.cfg.Freshness:
		st.State = slo.StateDegraded
		st.Reasons = append(st.Reasons, "UPS telemetry stale")
	default:
		st.State = slo.StateReady
	}
	s.mu.Lock()
	retired := s.stopped || s.draining
	s.mu.Unlock()
	if retired && st.State == slo.StateReady {
		st.State = slo.StateDegraded
		st.Reasons = append(st.Reasons, "shard draining or stopped")
	}
	return st
}

// AggregateOnce folds every shard's status into a fleet snapshot at time
// now, stores it as the latest snapshot (served by /fleet), and exports
// the fleet metrics. The aggregation layer runs at a deliberately slower
// cadence than the shard control loops; correctness of the 10s budget
// never depends on it.
func (f *Fleet) AggregateOnce(now time.Time) Snapshot {
	shards := f.shardList()
	snap := Snapshot{At: now, Rooms: make([]RoomStatus, 0, len(shards))}
	worst := slo.StateReady
	for _, s := range shards {
		st := f.roomStatus(s, now)
		snap.Rooms = append(snap.Rooms, st)
		snap.StrandedPower += st.Stranded
		snap.AllocatablePower += st.Allocatable
		snap.CommittedHeadroom += st.CommittedHeadroom
		snap.DroppedSamples += st.Dropped
		if st.State == slo.StateReady {
			snap.Ready++
		}
		worst = slo.Worst(worst, st.State)
	}
	snap.State = worst
	snap.Stages = f.StageSummaries()
	f.mu.Lock()
	f.snap = snap
	f.hasSnap = true
	f.mu.Unlock()
	if f.metrics != nil {
		f.metrics.export(snap)
	}
	return snap
}

// Snapshot returns the latest aggregated snapshot. When the aggregator
// has not run yet it aggregates on the spot; when the stored snapshot has
// aged past two aggregator periods the fleet state is lifted to at least
// degraded — a stale global view must not read as healthy.
func (f *Fleet) Snapshot() Snapshot {
	now := f.cfg.Clock.Now()
	f.mu.Lock()
	snap, ok := f.snap, f.hasSnap
	f.mu.Unlock()
	if !ok {
		return f.AggregateOnce(now)
	}
	if now.Sub(snap.At) > 2*f.cfg.AggregateEvery && snap.State < slo.StateDegraded {
		snap.State = slo.StateDegraded
	}
	return snap
}

// RunAggregator folds shard snapshots every AggregateEvery on the fleet
// clock until ctx is cancelled.
func (f *Fleet) RunAggregator(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		default:
		}
		f.AggregateOnce(f.cfg.Clock.Now())
		select {
		case <-ctx.Done():
			return
		case <-f.cfg.Clock.After(f.cfg.AggregateEvery):
		}
	}
}
