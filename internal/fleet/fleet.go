// Package fleet scales Flex-Online from one room to a datacenter fleet:
// one controller shard per UPS fault domain (room), telemetry fanned into
// per-shard bounded ingest queues with batching and backpressure, and a
// global aggregator folding per-shard snapshots into fleet-wide stranded
// power (Eq. 5), committed headroom, and per-room health.
//
// The sharding follows the hierarchy the multi-timescale VPP control
// literature argues for: fast local loops per fault domain (each shard
// keeps the paper's 10s FlexLatencyBudget on its own), with a slower
// aggregation layer on top for the fleet-level view. Shards share nothing
// on their hot paths — each owns its telemetry views, controllers, and
// ingest subscriptions — so one slow or saturated room can drop its own
// samples (drop-oldest, counted) without ever stalling a neighbor.
package fleet

import (
	"fmt"
	"sync"
	"time"

	"flex/internal/clock"
	"flex/internal/controller"
	"flex/internal/impact"
	"flex/internal/obs"
	"flex/internal/obs/recorder"
	"flex/internal/power"
	"flex/internal/rackmgr"
	"flex/internal/telemetry"
)

// Config assembles a Fleet. Zero values select sensible defaults.
type Config struct {
	// Name identifies the fleet in metrics and events (default "fleet").
	Name string
	// Clock drives shard loops and the aggregator (default wall clock).
	Clock clock.Clock
	// QueueDepth is each shard's per-topic ingest buffer in samples
	// (default 1024). When a shard falls behind, the oldest samples in its
	// queue are dropped and counted — backpressure never propagates to
	// the publisher or to other shards.
	QueueDepth int
	// AggregateEvery is the aggregator cadence (default 2s): how often
	// per-shard snapshots fold into the fleet snapshot. The aggregation
	// layer is deliberately slower than the shard control loops.
	AggregateEvery time.Duration
	// Freshness is how stale a shard's UPS telemetry may get before the
	// shard reports degraded (default 5s — beyond three missed 1.5s poll
	// rounds the failover estimate is drifting).
	Freshness time.Duration
	// Obs, when non-nil, registers fleet metrics (per-room gauges and
	// fleet totals) and is handed to each shard's controllers.
	Obs *obs.Registry
	// Recorder, when non-nil, is threaded to every shard's controllers so
	// fleet-wide episodes land in one causal event log.
	Recorder *recorder.Recorder
}

func (c *Config) fillDefaults() {
	if c.Name == "" {
		c.Name = "fleet"
	}
	if c.Clock == nil {
		c.Clock = clock.Real{}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.AggregateEvery <= 0 {
		c.AggregateEvery = 2 * time.Second
	}
	if c.Freshness <= 0 {
		c.Freshness = 5 * time.Second
	}
}

// RoomConfig describes one UPS fault domain joining the fleet.
type RoomConfig struct {
	// Name is the room's unique identity; it becomes the shard name, the
	// ingest topic suffix, and the metrics label.
	Name string
	// Topo is the room's power topology.
	Topo *power.Topology
	// Racks are the room's managed racks (the controller's action space).
	Racks []controller.ManagedRack
	// Actuator enforces actions in this room.
	Actuator *rackmgr.Manager
	// Scenario supplies impact functions for planning.
	Scenario impact.Scenario
	// Controllers is the number of multi-primary controller instances for
	// the shard (default 1; production rooms run 3 on separate fault
	// domains).
	Controllers int
	// Stranded is the room's Eq. 5 stranded power from placement
	// (AllocatablePower − PairLoad().Total()); the aggregator sums it into
	// the fleet total.
	Stranded power.Watts
	// Allocatable is the room's allocatable power (Eq. 5's minuend).
	Allocatable power.Watts
	// Interval is the controller evaluation period (default 500ms).
	Interval time.Duration
	// PlanBudget bounds one planning pass (default half the 10s budget).
	PlanBudget time.Duration
	// Buffer is the safety margin below UPS capacity (default 1% of the
	// smallest UPS capacity).
	Buffer power.Watts
}

// Fleet is the sharded Flex-Online layer: an ingest bus, one shard per
// room, and a periodic aggregator.
type Fleet struct {
	cfg     Config
	broker  *telemetry.Broker
	metrics *Metrics
	tracer  *obs.Tracer
	stages  *obs.StageMetrics

	mu      sync.Mutex
	shards  map[string]*Shard
	order   []string
	snap    Snapshot
	hasSnap bool
}

// New creates an empty fleet.
func New(cfg Config) *Fleet {
	cfg.fillDefaults()
	f := &Fleet{
		cfg:    cfg,
		broker: telemetry.NewBroker(cfg.Name + "-ingest"),
		shards: make(map[string]*Shard),
	}
	if cfg.Obs != nil {
		f.metrics = NewMetrics(cfg.Obs)
		f.broker.Metrics = telemetry.NewMetrics(cfg.Obs)
		// One tracer and one stage-histogram family for the whole fleet:
		// every shard's controllers feed them, so /fleet/traces stitches
		// cross-shard episodes from one ring and the per-stage p50/p99
		// gauges aggregate fleet-wide.
		f.tracer = obs.NewTracer(fleetTraceCapacity)
		f.stages = obs.NewStageMetrics(cfg.Obs)
	}
	f.broker.Recorder = cfg.Recorder
	return f
}

// fleetTraceCapacity sizes the fleet's shared trace ring: large enough
// that a 100-room fleet's concurrent overdraw rounds don't evict an
// episode mid-stitch.
const fleetTraceCapacity = 4096

// Tracer exposes the fleet's shared span tracer (nil without Config.Obs).
func (f *Fleet) Tracer() *obs.Tracer { return f.tracer }

// Stages exposes the fleet's shared per-stage latency histograms (nil
// without Config.Obs).
func (f *Fleet) Stages() *obs.StageMetrics { return f.stages }

// AddRoom creates the room's shard: telemetry views, bounded ingest
// subscriptions on the fleet bus, and the shard's controller instances.
// The returned shard is idle; drive it synchronously (Pump + StepContext)
// or start its loop with Start.
func (f *Fleet) AddRoom(rc RoomConfig) (*Shard, error) {
	if rc.Name == "" {
		return nil, fmt.Errorf("fleet: room name required")
	}
	if rc.Topo == nil {
		return nil, fmt.Errorf("fleet: room %s: topology required", rc.Name)
	}
	if rc.Controllers <= 0 {
		rc.Controllers = 1
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.shards[rc.Name]; dup {
		return nil, fmt.Errorf("fleet: room %s already added", rc.Name)
	}
	s := newShard(f, rc)
	f.shards[rc.Name] = s
	f.order = append(f.order, rc.Name)
	if f.metrics != nil {
		f.metrics.Rooms.Set(float64(len(f.order)))
	}
	return s, nil
}

// Shard returns the named room's shard (nil when unknown).
func (f *Fleet) Shard(room string) *Shard {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.shards[room]
}

// Rooms lists the fleet's room names in join order.
func (f *Fleet) Rooms() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, len(f.order))
	copy(out, f.order)
	return out
}

// Ingest publishes a telemetry batch for one room by name. kind is
// telemetry.TopicUPS or telemetry.TopicRack. It is the convenience form;
// hot-path publishers hold the *Shard from AddRoom and call its IngestUPS
// / IngestRacks directly, skipping the name lookup.
func (f *Fleet) Ingest(room, kind string, batch []telemetry.Sample) error {
	f.mu.Lock()
	s := f.shards[room]
	f.mu.Unlock()
	if s == nil {
		return fmt.Errorf("fleet: unknown room %s", room)
	}
	switch kind {
	case telemetry.TopicUPS:
		s.IngestUPS(batch)
	case telemetry.TopicRack:
		s.IngestRacks(batch)
	default:
		return fmt.Errorf("fleet: unknown topic kind %s", kind)
	}
	return nil
}

// shardList snapshots the shard set for lock-free iteration.
func (f *Fleet) shardList() []*Shard {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*Shard, 0, len(f.order))
	for _, name := range f.order {
		out = append(out, f.shards[name])
	}
	return out
}
