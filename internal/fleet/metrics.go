package fleet

import (
	"flex/internal/obs"
)

// Metrics is the fleet aggregation layer's observability. Per-room gauges
// are labeled by room name; totals mirror the Snapshot fields so the tsdb
// sampler picks the fleet view up on its normal registry scrape.
type Metrics struct {
	// Rooms is the number of shards in the fleet.
	Rooms *obs.Gauge
	// Ready is the number of shards currently in StateReady.
	Ready *obs.Gauge
	// State is the fleet health verdict (0 ready, 1 degraded, 2 unsafe).
	State *obs.Gauge
	// StrandedWatts is the fleet total of per-room Eq. 5 stranded power.
	StrandedWatts *obs.Gauge
	// CommittedHeadroomWatts totals the committed recovered power.
	CommittedHeadroomWatts *obs.Gauge
	// DroppedSamples totals ingest-queue evictions across shards.
	DroppedSamples *obs.Gauge
	// Aggregations counts aggregator folds.
	Aggregations *obs.Counter
	// RoomState is the per-room health verdict, labeled by room.
	RoomState *obs.GaugeVec
	// RoomStrandedWatts is per-room Eq. 5 stranded power, labeled by room.
	RoomStrandedWatts *obs.GaugeVec
	// RoomDropped is per-room ingest-queue evictions, labeled by room.
	RoomDropped *obs.GaugeVec
	// StageP50/StageP99 are the fleet critical-path latency quantiles by
	// stage, refreshed from the stage histograms on every aggregator
	// fold (gauge form, so dashboards graph the stage breakdown without
	// client-side histogram math).
	StageP50 *obs.GaugeVec
	StageP99 *obs.GaugeVec
}

// NewMetrics registers the fleet metrics on r (idempotent: calling twice
// with the same registry rebinds the same metrics).
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Rooms:         r.Gauge("flex_fleet_rooms", "shards in the fleet"),
		Ready:         r.Gauge("flex_fleet_rooms_ready", "shards in ready state"),
		State:         r.Gauge("flex_fleet_state", "fleet health verdict (0 ready, 1 degraded, 2 unsafe)"),
		StrandedWatts: r.Gauge("flex_fleet_stranded_watts", "fleet total of per-room Eq. 5 stranded power"),
		CommittedHeadroomWatts: r.Gauge("flex_fleet_committed_headroom_watts",
			"power recovered by enforced, unrestored actions across the fleet"),
		DroppedSamples: r.Gauge("flex_fleet_dropped_samples", "samples evicted from shard ingest queues"),
		Aggregations:   r.Counter("flex_fleet_aggregations_total", "aggregator folds"),
		RoomState: r.GaugeVec("flex_fleet_room_state",
			"per-room health verdict (0 ready, 1 degraded, 2 unsafe)", "room"),
		RoomStrandedWatts: r.GaugeVec("flex_fleet_room_stranded_watts",
			"per-room Eq. 5 stranded power", "room"),
		RoomDropped: r.GaugeVec("flex_fleet_room_dropped_samples",
			"per-room ingest-queue evictions", "room"),
		StageP50: r.GaugeVec("flex_fleet_stage_p50_seconds",
			"fleet critical-path latency p50 by stage", "stage"),
		StageP99: r.GaugeVec("flex_fleet_stage_p99_seconds",
			"fleet critical-path latency p99 by stage", "stage"),
	}
}

// export publishes one snapshot to the registry.
func (m *Metrics) export(snap Snapshot) {
	m.Ready.Set(float64(snap.Ready))
	m.State.Set(float64(snap.State))
	m.StrandedWatts.Set(float64(snap.StrandedPower))
	m.CommittedHeadroomWatts.Set(float64(snap.CommittedHeadroom))
	m.DroppedSamples.Set(float64(snap.DroppedSamples))
	m.Aggregations.Inc()
	for _, room := range snap.Rooms {
		m.RoomState.With(room.Name).Set(float64(room.State))
		m.RoomStrandedWatts.With(room.Name).Set(float64(room.Stranded))
		m.RoomDropped.With(room.Name).Set(float64(room.Dropped))
	}
	for _, st := range snap.Stages {
		m.StageP50.With(st.Stage).Set(st.P50)
		m.StageP99.With(st.Stage).Set(st.P99)
	}
}
