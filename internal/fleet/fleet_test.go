package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"flex/internal/clock"
	"flex/internal/controller"
	"flex/internal/impact"
	"flex/internal/obs"
	"flex/internal/obs/slo"
	"flex/internal/power"
	"flex/internal/rackmgr"
	"flex/internal/telemetry"
	"flex/internal/workload"
)

func t0() time.Time { return time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC) }

// testTopo builds a small 4N/3 room: 4 × 100kW UPSes, 6 PDU-pairs.
func testTopo(t *testing.T) *power.Topology {
	t.Helper()
	topo, err := power.NewRoom(power.RoomConfig{
		Design:              power.Redundancy{X: 4, Y: 3},
		UPSCapacity:         100 * power.KW,
		PairsPerCombination: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// testRacks places one software-redundant and one cap-able rack per pair,
// with IDs prefixed by room so rooms never collide.
func testRacks(room string, topo *power.Topology) []controller.ManagedRack {
	var racks []controller.ManagedRack
	for _, p := range topo.Pairs {
		racks = append(racks,
			controller.ManagedRack{ID: fmt.Sprintf("%s-sr-%d", room, p.ID), Workload: "websearch",
				Category: workload.SoftwareRedundant, Pair: p.ID,
				Allocated: 10 * power.KW, FlexPower: 0},
			controller.ManagedRack{ID: fmt.Sprintf("%s-cap-%d", room, p.ID), Workload: "vmservice",
				Category: workload.NonRedundantCapable, Pair: p.ID,
				Allocated: 10 * power.KW, FlexPower: 8 * power.KW},
		)
	}
	return racks
}

// testRoomConfig assembles a RoomConfig with its own actuator.
func testRoomConfig(t *testing.T, name string, clk clock.Clock) RoomConfig {
	t.Helper()
	topo := testTopo(t)
	racks := testRacks(name, topo)
	ids := make([]string, len(racks))
	for i, r := range racks {
		ids[i] = r.ID
	}
	return RoomConfig{
		Name:        name,
		Topo:        topo,
		Racks:       racks,
		Actuator:    rackmgr.NewManager(clk, ids),
		Scenario:    impact.Realistic1(),
		Stranded:    5 * power.KW,
		Allocatable: 300 * power.KW,
		Buffer:      power.KW,
	}
}

// feed publishes a full telemetry round for the shard's room: the given
// per-UPS powers plus every rack at its allocated draw.
func feed(s *Shard, rc RoomConfig, at time.Time, ups []power.Watts) {
	batch := make([]telemetry.Sample, len(ups))
	for u := range ups {
		batch[u] = telemetry.Sample{
			Device: rc.Topo.UPSes[u].Name, Power: ups[u], Valid: true, MeasuredAt: at,
		}
	}
	s.IngestUPS(batch)
	rb := make([]telemetry.Sample, len(rc.Racks))
	for i, r := range rc.Racks {
		rb[i] = telemetry.Sample{Device: r.ID, Power: r.Allocated, Valid: true, MeasuredAt: at}
	}
	s.IngestRacks(rb)
}

func TestAddRoomValidation(t *testing.T) {
	clk := clock.NewVirtual(t0())
	f := New(Config{Clock: clk})
	rc := testRoomConfig(t, "room-1", clk)
	if _, err := f.AddRoom(rc); err != nil {
		t.Fatal(err)
	}
	if _, err := f.AddRoom(rc); err == nil {
		t.Fatal("duplicate room accepted")
	}
	if _, err := f.AddRoom(RoomConfig{Topo: rc.Topo}); err == nil {
		t.Fatal("nameless room accepted")
	}
	if _, err := f.AddRoom(RoomConfig{Name: "room-2"}); err == nil {
		t.Fatal("topology-less room accepted")
	}
	if got := f.Rooms(); len(got) != 1 || got[0] != "room-1" {
		t.Fatalf("Rooms() = %v, want [room-1]", got)
	}
	if f.Shard("room-1") == nil || f.Shard("nope") != nil {
		t.Fatal("Shard lookup wrong")
	}
}

func TestIngestRoutesToOwnShardOnly(t *testing.T) {
	clk := clock.NewVirtual(t0())
	f := New(Config{Clock: clk})
	rcA := testRoomConfig(t, "room-a", clk)
	rcB := testRoomConfig(t, "room-b", clk)
	a, _ := f.AddRoom(rcA)
	b, _ := f.AddRoom(rcB)

	if err := f.Ingest("room-a", telemetry.TopicUPS, []telemetry.Sample{
		{Device: rcA.Topo.UPSes[0].Name, Power: 50 * power.KW, Valid: true, MeasuredAt: clk.Now()},
	}); err != nil {
		t.Fatal(err)
	}
	if err := f.Ingest("nope", telemetry.TopicUPS, nil); err == nil {
		t.Fatal("unknown room accepted")
	}
	if err := f.Ingest("room-a", "bogus", nil); err == nil {
		t.Fatal("unknown topic kind accepted")
	}
	if n := a.Pump(); n != 1 {
		t.Fatalf("room-a pumped %d, want 1", n)
	}
	if n := b.Pump(); n != 0 {
		t.Fatalf("room-b pumped %d, want 0 (cross-shard leak)", n)
	}
	if _, _, ok := a.UPSView().Get(rcA.Topo.UPSes[0].Name); !ok {
		t.Fatal("sample did not reach room-a view")
	}
}

func TestShardShedsOnOverdraw(t *testing.T) {
	clk := clock.NewVirtual(t0())
	f := New(Config{Clock: clk})
	rc := testRoomConfig(t, "room-1", clk)
	s, err := f.AddRoom(rc)
	if err != nil {
		t.Fatal(err)
	}
	// UPS 0 failed (0W → inferred inactive); survivors at 120kW, 20kW over
	// their 100kW rating.
	clk.Advance(time.Second)
	feed(s, rc, clk.Now(), []power.Watts{0, 120 * power.KW, 120 * power.KW, 120 * power.KW})
	if n := s.Pump(); n == 0 {
		t.Fatal("pump moved nothing")
	}
	overdraw, enforced, _ := s.StepContext(context.Background())
	if !overdraw {
		t.Fatal("overdraw not detected")
	}
	if enforced == 0 {
		t.Fatal("no corrective actions enforced")
	}
	headroom, acted := s.committedHeadroom()
	if headroom <= 0 || acted == 0 {
		t.Fatalf("committed headroom %v over %d racks, want > 0", headroom, acted)
	}
}

func TestAggregateSumsAndHealth(t *testing.T) {
	clk := clock.NewVirtual(t0())
	reg := obs.NewRegistry()
	f := New(Config{Clock: clk, Obs: reg, AggregateEvery: 2 * time.Second})
	rcA := testRoomConfig(t, "room-a", clk)
	rcB := testRoomConfig(t, "room-b", clk)
	rcB.Stranded = 7 * power.KW
	a, _ := f.AddRoom(rcA)
	b, _ := f.AddRoom(rcB)

	clk.Advance(time.Second)
	feed(a, rcA, clk.Now(), []power.Watts{50 * power.KW, 50 * power.KW, 50 * power.KW, 50 * power.KW})
	a.Pump()
	// room-b gets no telemetry: it must report degraded, and the fleet
	// verdict must be the worst shard.
	snap := f.AggregateOnce(clk.Now())
	if snap.StrandedPower != 12*power.KW {
		t.Fatalf("fleet stranded = %v, want 12kW (5+7)", snap.StrandedPower)
	}
	if snap.AllocatablePower != 600*power.KW {
		t.Fatalf("fleet allocatable = %v, want 600kW", snap.AllocatablePower)
	}
	if snap.Ready != 1 {
		t.Fatalf("ready = %d, want 1", snap.Ready)
	}
	if snap.State != slo.StateDegraded {
		t.Fatalf("fleet state = %v, want degraded (room-b has no telemetry)", snap.State)
	}
	var aSt, bSt *RoomStatus
	for i := range snap.Rooms {
		switch snap.Rooms[i].Name {
		case "room-a":
			aSt = &snap.Rooms[i]
		case "room-b":
			bSt = &snap.Rooms[i]
		}
	}
	if aSt == nil || aSt.State != slo.StateReady {
		t.Fatalf("room-a status = %+v, want ready", aSt)
	}
	if bSt == nil || bSt.State != slo.StateDegraded {
		t.Fatalf("room-b status = %+v, want degraded", bSt)
	}
	_ = b
	// Metrics exported on the fold.
	if got := f.metrics.StrandedWatts.Value(); got != float64(12*power.KW) {
		t.Fatalf("flex_fleet_stranded_watts = %v, want 12000", got)
	}
	if got := f.metrics.RoomState.With("room-b").Value(); got != float64(slo.StateDegraded) {
		t.Fatalf("room-b state gauge = %v, want degraded", got)
	}
}

func TestSnapshotStalenessDegrades(t *testing.T) {
	clk := clock.NewVirtual(t0())
	f := New(Config{Clock: clk, AggregateEvery: 2 * time.Second})
	rc := testRoomConfig(t, "room-1", clk)
	s, _ := f.AddRoom(rc)
	clk.Advance(time.Second)
	feed(s, rc, clk.Now(), []power.Watts{50 * power.KW, 50 * power.KW, 50 * power.KW, 50 * power.KW})
	s.Pump()
	if snap := f.AggregateOnce(clk.Now()); snap.State != slo.StateReady {
		t.Fatalf("fresh fleet state = %v, want ready", snap.State)
	}
	if snap := f.Snapshot(); snap.State != slo.StateReady {
		t.Fatalf("fresh Snapshot state = %v, want ready", snap.State)
	}
	// The aggregator stops folding; a stale global view must not read as
	// healthy.
	clk.Advance(10 * time.Second)
	if snap := f.Snapshot(); snap.State != slo.StateDegraded {
		t.Fatalf("stale Snapshot state = %v, want degraded", snap.State)
	}
}

func TestStaleTelemetryDegradesRoom(t *testing.T) {
	clk := clock.NewVirtual(t0())
	f := New(Config{Clock: clk, Freshness: 5 * time.Second})
	rc := testRoomConfig(t, "room-1", clk)
	s, _ := f.AddRoom(rc)
	clk.Advance(time.Second)
	feed(s, rc, clk.Now(), []power.Watts{50 * power.KW, 50 * power.KW, 50 * power.KW, 50 * power.KW})
	s.Pump()
	clk.Advance(20 * time.Second)
	snap := f.AggregateOnce(clk.Now())
	if snap.Rooms[0].State != slo.StateDegraded {
		t.Fatalf("room state = %v after 20s telemetry silence, want degraded", snap.Rooms[0].State)
	}
}

func TestFleetHandler(t *testing.T) {
	clk := clock.NewVirtual(t0())
	f := New(Config{Clock: clk})
	rc := testRoomConfig(t, "room-1", clk)
	s, _ := f.AddRoom(rc)
	clk.Advance(time.Second)
	feed(s, rc, clk.Now(), []power.Watts{50 * power.KW, 50 * power.KW, 50 * power.KW, 50 * power.KW})
	s.Pump()
	f.AggregateOnce(clk.Now())

	h := f.Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/fleet", nil))
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("bad /fleet JSON: %v", err)
	}
	if len(snap.Rooms) != 1 || snap.Rooms[0].Name != "room-1" {
		t.Fatalf("snapshot rooms = %+v", snap.Rooms)
	}
	if snap.StrandedPower != 5*power.KW {
		t.Fatalf("stranded = %v, want 5kW", snap.StrandedPower)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/fleet?room=room-1", nil))
	var st RoomStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("bad /fleet?room JSON: %v", err)
	}
	if st.Name != "room-1" || st.State != slo.StateReady {
		t.Fatalf("room status = %+v", st)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/fleet?room=nope", nil))
	if rec.Code != 404 {
		t.Fatalf("unknown room status = %d, want 404", rec.Code)
	}
}

// TestShardIsolationUnderSaturation is the deterministic core of the
// isolation property: one shard's ingest queue saturated far past its
// depth (backpressure engaged, drops counted) while a concurrent UPS
// failure on another shard is still detected and shed on the same virtual
// clock — zero cross-shard stall.
func TestShardIsolationUnderSaturation(t *testing.T) {
	clk := clock.NewVirtual(t0())
	f := New(Config{Clock: clk, QueueDepth: 64})
	rcHot := testRoomConfig(t, "room-hot", clk)
	rcCold := testRoomConfig(t, "room-cold", clk)
	hot, _ := f.AddRoom(rcHot)
	cold, _ := f.AddRoom(rcCold)

	clk.Advance(time.Second)
	// Saturate room-hot: 100 full UPS rounds against a 64-deep queue with
	// no pump draining it.
	for i := 0; i < 100; i++ {
		feed(hot, rcHot, clk.Now(), []power.Watts{50 * power.KW, 50 * power.KW, 50 * power.KW, 50 * power.KW})
	}
	if hot.Dropped() == 0 {
		t.Fatal("saturated shard dropped nothing; backpressure not engaged")
	}
	// Concurrently, room-cold has a UPS failure. Its queue, views, and
	// controller share nothing with room-hot's.
	feed(cold, rcCold, clk.Now(), []power.Watts{0, 120 * power.KW, 120 * power.KW, 120 * power.KW})
	cold.Pump()
	overdraw, enforced, _ := cold.StepContext(context.Background())
	if !overdraw || enforced == 0 {
		t.Fatalf("cold shard overdraw=%v enforced=%d under neighbor saturation, want detection and action",
			overdraw, enforced)
	}
	if cold.Dropped() != 0 {
		t.Fatalf("cold shard dropped %d samples, want 0", cold.Dropped())
	}
}

// TestShardLifecycleConcurrent runs the goroutine lifecycle end to end —
// Start on every shard, concurrent ingest, a running aggregator, Drain,
// Stop — and is in the race-detector CI list.
func TestShardLifecycleConcurrent(t *testing.T) {
	clk := clock.Real{}
	f := New(Config{Clock: clk, AggregateEvery: 5 * time.Millisecond})
	const rooms = 4
	rcs := make([]RoomConfig, rooms)
	shards := make([]*Shard, rooms)
	for i := range rcs {
		rcs[i] = testRoomConfig(t, fmt.Sprintf("room-%d", i), clk)
		rcs[i].Interval = time.Millisecond
		s, err := f.AddRoom(rcs[i])
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = s
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for _, s := range shards {
		if err := s.Start(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if err := shards[0].Start(ctx); err == nil {
		t.Fatal("double Start accepted")
	}
	go f.RunAggregator(ctx)

	// Concurrent publishers, one per room.
	pubCtx, pubCancel := context.WithCancel(context.Background())
	done := make(chan struct{}, rooms)
	for i := range shards {
		go func(i int) {
			defer func() { done <- struct{}{} }()
			for {
				select {
				case <-pubCtx.Done():
					return
				default:
				}
				feed(shards[i], rcs[i], time.Now(), []power.Watts{
					50 * power.KW, 50 * power.KW, 50 * power.KW, 50 * power.KW})
				time.Sleep(500 * time.Microsecond)
			}
		}(i)
	}
	time.Sleep(30 * time.Millisecond)
	pubCancel()
	for i := 0; i < rooms; i++ {
		<-done
	}

	drainCtx, drainCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer drainCancel()
	if err := shards[0].Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, s := range shards[1:] {
		s.Stop()
	}
	cancel()
	for _, s := range shards {
		if s.Pumped() == 0 {
			t.Fatalf("shard %s pumped nothing", s.Name)
		}
	}
	// Post-drain ingest must be a silent no-op.
	feed(shards[0], rcs[0], time.Now(), []power.Watts{50 * power.KW, 50 * power.KW, 50 * power.KW, 50 * power.KW})
	if n := shards[0].Pump(); n != 0 {
		t.Fatalf("drained shard pumped %d new samples, want 0", n)
	}
}

// TestDrainWithoutStart drains a never-started shard synchronously.
func TestDrainWithoutStart(t *testing.T) {
	clk := clock.NewVirtual(t0())
	f := New(Config{Clock: clk})
	rc := testRoomConfig(t, "room-1", clk)
	s, _ := f.AddRoom(rc)
	clk.Advance(time.Second)
	feed(s, rc, clk.Now(), []power.Watts{50 * power.KW, 50 * power.KW, 50 * power.KW, 50 * power.KW})
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if s.Pumped() == 0 {
		t.Fatal("drain did not process buffered samples")
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("second drain: %v", err)
	}
	s.Stop() // idempotent after drain
}
