package fleet

import (
	"context"
	"fmt"
	"sync"
	"time"

	"flex/internal/controller"
	"flex/internal/telemetry"
)

// Shard is one room's slice of the fleet: its own telemetry views and
// bounded ingest queues, its own controller primaries, its own loop. A
// shard shares no locks with its siblings on the ingest or step paths —
// the isolation property the fleet exists to provide.
type Shard struct {
	// Name is the room name.
	Name string

	fleet     *Fleet
	cfg       RoomConfig
	upsTopic  string
	rackTopic string
	upsSub    *telemetry.Subscription
	rackSub   *telemetry.Subscription
	upsView   *telemetry.LatestPower
	rackView  *telemetry.LatestPower
	ctls      []*controller.Controller
	buf       []telemetry.Sample

	mu       sync.Mutex
	running  bool
	stopped  bool
	draining bool
	drainCh  chan struct{}
	cancel   context.CancelFunc
	done     chan struct{}
	pumped   uint64
	steps    uint64
}

func newShard(f *Fleet, rc RoomConfig) *Shard {
	s := &Shard{
		Name:      rc.Name,
		fleet:     f,
		cfg:       rc,
		upsTopic:  telemetry.TopicUPS + "/" + rc.Name,
		rackTopic: telemetry.TopicRack + "/" + rc.Name,
		upsView:   telemetry.NewLatestPower(),
		rackView:  telemetry.NewLatestPower(),
		buf:       make([]telemetry.Sample, 256),
		drainCh:   make(chan struct{}),
		done:      make(chan struct{}),
	}
	s.upsSub = f.broker.Subscribe(s.upsTopic, f.cfg.QueueDepth)
	s.rackSub = f.broker.Subscribe(s.rackTopic, f.cfg.QueueDepth)
	var ctlMetrics *controller.Metrics
	if f.cfg.Obs != nil {
		// One registry-wide metrics instance: the fleet's controller
		// counters and latency histograms aggregate across shards, the
		// same way a room's aggregate across primaries.
		ctlMetrics = controller.NewMetrics(f.cfg.Obs)
	}
	s.ctls = make([]*controller.Controller, rc.Controllers)
	for i := range s.ctls {
		s.ctls[i] = controller.New(controller.Config{
			Name:       fmt.Sprintf("%s/ctl-%d", rc.Name, i+1),
			Clock:      f.cfg.Clock,
			Topo:       rc.Topo,
			Racks:      rc.Racks,
			UPSView:    s.upsView,
			RackView:   s.rackView,
			Actuator:   rc.Actuator,
			Scenario:   rc.Scenario,
			Buffer:     rc.Buffer,
			Interval:   rc.Interval,
			PlanBudget: rc.PlanBudget,
			Metrics:    ctlMetrics,
			Tracer:     f.tracer,
			Stages:     f.stages,
			Recorder:   f.cfg.Recorder,
		})
	}
	return s
}

// IngestUPS publishes a batch of UPS samples onto the shard's bounded
// ingest queue. Never blocks: a full queue drops its oldest samples
// (counted via Dropped) — backpressure is absorbed here, at this shard,
// and nowhere else.
//
//flex:hotpath
func (s *Shard) IngestUPS(batch []telemetry.Sample) {
	s.fleet.broker.PublishBatch(s.upsTopic, batch)
}

// IngestRacks publishes a batch of rack samples onto the shard's bounded
// ingest queue with the same drop-oldest semantics as IngestUPS.
//
//flex:hotpath
func (s *Shard) IngestRacks(batch []telemetry.Sample) {
	s.fleet.broker.PublishBatch(s.rackTopic, batch)
}

// Pump drains the shard's ingest queues into its telemetry views and
// returns how many samples it moved. Each drained sample is stamped with
// the dequeue instant (one clock read per batch) so the queue-wait stage
// of the latency waterfall is attributable. The emulator and tests call
// it directly for deterministic schedules; Start's loop calls it each
// round.
func (s *Shard) Pump() int {
	n := 0
	for {
		k := s.upsSub.RecvBatch(s.buf)
		if k > 0 {
			at := s.fleet.cfg.Clock.Now()
			for i := 0; i < k; i++ {
				s.buf[i].DequeuedAt = at
				s.upsView.Update(s.buf[i])
			}
		}
		n += k
		if k < len(s.buf) {
			break
		}
	}
	for {
		k := s.rackSub.RecvBatch(s.buf)
		if k > 0 {
			at := s.fleet.cfg.Clock.Now()
			for i := 0; i < k; i++ {
				s.buf[i].DequeuedAt = at
				s.rackView.Update(s.buf[i])
			}
		}
		n += k
		if k < len(s.buf) {
			break
		}
	}
	if n > 0 {
		s.mu.Lock()
		s.pumped += uint64(n)
		s.mu.Unlock()
	}
	return n
}

// StepContext runs one evaluation round on every controller primary and
// reports the aggregate: whether any primary saw an overdraw, and how many
// actions were enforced and racks restored across them.
func (s *Shard) StepContext(ctx context.Context) (overdraw bool, enforced, restored int) {
	for _, c := range s.ctls {
		out := c.StepContext(ctx)
		overdraw = overdraw || out.Overdraw
		enforced += out.Enforced
		restored += out.Restored
	}
	s.mu.Lock()
	s.steps++
	s.mu.Unlock()
	return overdraw, enforced, restored
}

// Start launches the shard's loop: pump, step, sleep Interval on the
// fleet clock, until Stop, Drain, or ctx cancellation. Each shard loop is
// its own goroutine; a stalled or saturated shard never blocks another.
func (s *Shard) Start(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return fmt.Errorf("fleet: shard %s already stopped", s.Name)
	}
	if s.running {
		return fmt.Errorf("fleet: shard %s already running", s.Name)
	}
	runCtx, cancel := context.WithCancel(ctx)
	s.running = true
	s.cancel = cancel
	go s.run(runCtx)
	return nil
}

func (s *Shard) run(ctx context.Context) {
	defer close(s.done)
	interval := s.cfg.Interval
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	for {
		s.Pump()
		select {
		case <-ctx.Done():
			return
		case <-s.drainCh:
			// Drain: the queues are closed to new samples; move what is
			// still buffered, take one final corrective look, and exit.
			s.Pump()
			s.StepContext(ctx)
			return
		default:
		}
		s.StepContext(ctx)
		select {
		case <-ctx.Done():
			return
		case <-s.drainCh:
			s.Pump()
			s.StepContext(ctx)
			return
		case <-s.fleet.cfg.Clock.After(interval):
		}
	}
}

// Drain gracefully retires the shard: its ingest queues stop accepting
// samples (publishers are unaffected — their batches fall on closed
// subscriptions), buffered samples are processed, and one final step runs.
// Blocks until the loop exits or ctx expires. Safe to call on a shard
// that was never started; it then drains synchronously.
func (s *Shard) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return nil
	}
	if !s.draining {
		s.draining = true
		close(s.drainCh)
		s.upsSub.Close()
		s.rackSub.Close()
	}
	running := s.running
	s.mu.Unlock()
	if !running {
		s.Pump()
		s.StepContext(ctx)
		s.markStopped()
		return nil
	}
	select {
	case <-s.done:
		s.markStopped()
		return nil
	case <-ctx.Done():
		return fmt.Errorf("fleet: drain %s: %w", s.Name, ctx.Err())
	}
}

// Stop halts the shard immediately: the loop is cancelled without a final
// pump, and the ingest queues close. Buffered samples are discarded.
func (s *Shard) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	cancel, running := s.cancel, s.running
	if !s.draining {
		s.draining = true
		close(s.drainCh)
		s.upsSub.Close()
		s.rackSub.Close()
	}
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	if running {
		<-s.done
	}
	s.markStopped()
}

func (s *Shard) markStopped() {
	s.mu.Lock()
	s.stopped = true
	s.running = false
	s.mu.Unlock()
}

// Dropped reports how many samples this shard's ingest queues have
// evicted under backpressure.
func (s *Shard) Dropped() int {
	return s.upsSub.Dropped() + s.rackSub.Dropped()
}

// Pumped reports how many samples the shard has moved into its views.
func (s *Shard) Pumped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pumped
}

// Steps reports how many evaluation rounds the shard has run.
func (s *Shard) Steps() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.steps
}

// UPSView exposes the shard's UPS telemetry view (for audit bindings).
func (s *Shard) UPSView() *telemetry.LatestPower { return s.upsView }

// RackView exposes the shard's rack telemetry view.
func (s *Shard) RackView() *telemetry.LatestPower { return s.rackView }

// Controllers exposes the shard's controller primaries.
func (s *Shard) Controllers() []*controller.Controller { return s.ctls }

// committedHeadroom is the power the shard's enforced-and-unrestored
// actions have recovered. Multi-primary instances act idempotently on the
// same racks, so the fold dedups by rack (taking the largest claim) rather
// than summing across primaries.
func (s *Shard) committedHeadroom() (watts float64, racks int) {
	byRack := make(map[string]float64)
	for _, c := range s.ctls {
		actions, _ := c.CommittedActions()
		for _, a := range actions {
			if w := float64(a.Recovered); w > byRack[a.Rack] {
				byRack[a.Rack] = w
			}
		}
	}
	for _, w := range byRack {
		watts += w
	}
	return watts, len(byRack)
}

// openEpisode reports whether any primary has an open overdraw episode
// and the earliest time one was detected.
func (s *Shard) openEpisode() (open bool, since time.Time) {
	for _, c := range s.ctls {
		if _, at, ok := c.OpenEpisode(); ok {
			if !open || at.Before(since) {
				since = at
			}
			open = true
		}
	}
	return open, since
}
