package fleet

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"flex/internal/obs"
)

// StageSummary is one critical-path stage's fleet-wide latency digest,
// folded into Snapshot.Stages by AggregateOnce and served at /fleet.
type StageSummary struct {
	Stage string  `json:"stage"`
	Count uint64  `json:"count"`
	P50   float64 `json:"p50_seconds"`
	P99   float64 `json:"p99_seconds"`
	// Exemplar joins the stage's slowest populated bucket back to its
	// flight-recorder context; nil until the stage has observations.
	Exemplar *StageExemplar `json:"exemplar,omitempty"`
}

// StageExemplar is the join record carried by a stage histogram bucket:
// resolve Episode via /events?episode= (the full causal chain), Trace
// via /traces?episode=, and Event via /events?since=Event-1.
type StageExemplar struct {
	Seconds float64 `json:"seconds"`
	Episode uint64  `json:"episode,omitempty"`
	Trace   uint64  `json:"trace,omitempty"`
	Event   uint64  `json:"event,omitempty"`
}

// StageSummaries digests the fleet's per-stage latency histograms (nil
// without Config.Obs). Order follows the stage timeline.
func (f *Fleet) StageSummaries() []StageSummary {
	if f.stages == nil {
		return nil
	}
	out := make([]StageSummary, 0, obs.NumStages)
	for _, st := range obs.Stages() {
		h := f.stages.Histogram(st)
		sum := h.Summary()
		s := StageSummary{
			Stage: st.String(),
			Count: sum.Count,
			P50:   sum.Quantile(0.50),
			P99:   sum.Quantile(0.99),
		}
		if exs := h.Exemplars(); len(exs) > 0 {
			worst := exs[0]
			for _, e := range exs[1:] {
				if e.Value > worst.Value {
					worst = e
				}
			}
			s.Exemplar = &StageExemplar{
				Seconds: worst.Value,
				Episode: worst.Episode,
				Trace:   worst.Trace,
				Event:   worst.Seq,
			}
		}
		out = append(out, s)
	}
	return out
}

// StageSpan is one stage slice of an episode waterfall, offset from the
// episode's start (the triggering sample's MeasuredAt when stamped).
type StageSpan struct {
	Stage           string  `json:"stage"`
	OffsetSeconds   float64 `json:"offset_seconds"`
	DurationSeconds float64 `json:"duration_seconds"`
}

// EpisodeTrace is one overdraw episode's stitched waterfall: every
// controller-round trace tagged with the episode id, merged into a
// single meter-to-actuation timeline. Gaps between rounds appear as
// "wait" stages, so the per-stage totals tile the episode span and their
// sum reconciles with TotalSeconds by construction.
type EpisodeTrace struct {
	Episode uint64 `json:"episode"`
	// Room is parsed from the trace name ("flex-online/<room>/ctl-N").
	Room string `json:"room,omitempty"`
	// Root is the flight-recorder sequence of the episode's first detect
	// event (0 when unrecorded) — the /events join key.
	Root         uint64      `json:"root,omitempty"`
	Start        time.Time   `json:"start"`
	End          time.Time   `json:"end"`
	TotalSeconds float64     `json:"total_seconds"`
	Traces       int         `json:"traces"`
	Stages       []StageSpan `json:"stages"`
	// TotalsSeconds sums stage durations by stage name across the
	// episode's rounds ("wait" included).
	TotalsSeconds map[string]float64 `json:"totals_seconds"`
}

// EpisodeTraces stitches the fleet tracer's retained traces into
// per-episode waterfalls, newest episode first. limit keeps the newest
// limit episodes (0 = all). Nil without Config.Obs.
func (f *Fleet) EpisodeTraces(limit int) []EpisodeTrace {
	if f.tracer == nil {
		return nil
	}
	recent := f.tracer.Recent() // newest first
	byEp := make(map[uint64][]obs.Trace)
	var order []uint64
	for _, t := range recent {
		if t.Episode == 0 {
			continue
		}
		if _, seen := byEp[t.Episode]; !seen {
			order = append(order, t.Episode)
		}
		byEp[t.Episode] = append(byEp[t.Episode], t)
	}
	if limit > 0 && len(order) > limit {
		order = order[:limit]
	}
	out := make([]EpisodeTrace, 0, len(order))
	for _, ep := range order {
		out = append(out, stitchEpisode(ep, byEp[ep]))
	}
	return out
}

// stitchEpisode merges one episode's round traces into a waterfall. A
// later round's early stages can overlap the previous round — a
// stale-skip round re-reads the very sample the acting round consumed,
// so its sample/queue/view spans reach back before the previous round
// ended. Each span is therefore clipped to an attribution watermark
// (the latest instant already attributed): every wall-clock instant of
// the episode lands in exactly one stage, which is what makes the
// per-stage totals tile the span and their sum equal TotalSeconds by
// construction.
func stitchEpisode(ep uint64, traces []obs.Trace) EpisodeTrace {
	sort.Slice(traces, func(i, j int) bool { return traces[i].Seq < traces[j].Seq })
	et := EpisodeTrace{
		Episode:       ep,
		Room:          roomOfTrace(traces[0].Name),
		Start:         traces[0].Start,
		End:           traces[0].End,
		Traces:        len(traces),
		TotalsSeconds: make(map[string]float64),
	}
	watermark := et.Start
	for _, t := range traces {
		if et.Root == 0 && t.Root != 0 {
			et.Root = t.Root
		}
		if t.End.After(et.End) {
			et.End = t.End
		}
		// A round starting after the attributed timeline ends is budget
		// spent waiting on the next telemetry cadence — attribute it.
		if gap := t.Start.Sub(watermark); gap > 0 {
			et.Stages = append(et.Stages, StageSpan{
				Stage:           "wait",
				OffsetSeconds:   watermark.Sub(et.Start).Seconds(),
				DurationSeconds: gap.Seconds(),
			})
			et.TotalsSeconds["wait"] += gap.Seconds()
			watermark = t.Start
		}
		for _, s := range t.Spans {
			if s.End.Before(watermark) {
				continue // fully attributed by an earlier round
			}
			start := s.Start
			if start.Before(watermark) {
				start = watermark
			}
			d := s.End.Sub(start)
			et.Stages = append(et.Stages, StageSpan{
				Stage:           s.Name,
				OffsetSeconds:   start.Sub(et.Start).Seconds(),
				DurationSeconds: d.Seconds(),
			})
			et.TotalsSeconds[s.Name] += d.Seconds()
			if s.End.After(watermark) {
				watermark = s.End
			}
		}
	}
	et.TotalSeconds = et.End.Sub(et.Start).Seconds()
	return et
}

// roomOfTrace extracts the room from a shard controller trace name of the
// form "flex-online/<room>/ctl-N" (empty when the name has another
// shape, e.g. a single-room controller's "flex-online/flex-ctl-1").
func roomOfTrace(name string) string {
	rest, ok := strings.CutPrefix(name, "flex-online/")
	if !ok {
		return ""
	}
	if i := strings.LastIndex(rest, "/"); i >= 0 {
		return rest[:i]
	}
	return ""
}

// TracesHandler returns the /fleet/traces endpoint: stitched per-episode
// stage waterfalls plus the fleet stage digests, as JSON. ?episode=N
// narrows to one episode; ?limit=K keeps the newest K episodes.
func (f *Fleet) TracesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		q := r.URL.Query()
		limit := 0
		if s := q.Get("limit"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 0 {
				http.Error(w, "bad limit parameter: "+strconv.Quote(s), http.StatusBadRequest)
				return
			}
			limit = v
		}
		episodes := f.EpisodeTraces(limit)
		if s := q.Get("episode"); s != "" {
			v, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				http.Error(w, "bad episode parameter: "+strconv.Quote(s), http.StatusBadRequest)
				return
			}
			filtered := episodes[:0]
			for _, e := range episodes {
				if e.Episode == v {
					filtered = append(filtered, e)
				}
			}
			episodes = filtered
		}
		out := struct {
			Episodes []EpisodeTrace `json:"episodes"`
			Stages   []StageSummary `json:"stages"`
		}{Episodes: episodes, Stages: f.StageSummaries()}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
	})
}
