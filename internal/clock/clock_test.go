package clock

import (
	"sync"
	"testing"
	"time"
)

func TestRealClockNow(t *testing.T) {
	c := Real{}
	before := time.Now()
	got := c.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("Real.Now out of range: %v", got)
	}
}

func TestRealClockAfter(t *testing.T) {
	c := Real{}
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(time.Second):
		t.Fatal("Real.After never fired")
	}
}

func TestVirtualNowAndAdvance(t *testing.T) {
	start := time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)
	v := NewVirtual(start)
	if !v.Now().Equal(start) {
		t.Fatalf("Now = %v, want %v", v.Now(), start)
	}
	v.Advance(90 * time.Second)
	if want := start.Add(90 * time.Second); !v.Now().Equal(want) {
		t.Fatalf("Now after Advance = %v, want %v", v.Now(), want)
	}
}

func TestVirtualAfterFiresAtDeadline(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	ch := v.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("After fired before Advance")
	default:
	}
	v.Advance(9 * time.Second)
	select {
	case <-ch:
		t.Fatal("After fired too early")
	default:
	}
	v.Advance(time.Second)
	select {
	case ts := <-ch:
		if !ts.Equal(time.Unix(10, 0)) {
			t.Fatalf("fired at %v, want t=10s", ts)
		}
	default:
		t.Fatal("After did not fire at deadline")
	}
}

func TestVirtualAfterNonPositive(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	select {
	case <-v.After(0):
	default:
		t.Fatal("After(0) should fire immediately")
	}
	select {
	case <-v.After(-time.Second):
	default:
		t.Fatal("After(negative) should fire immediately")
	}
}

func TestVirtualSleepWakesSleeper(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	var wg sync.WaitGroup
	wg.Add(1)
	done := make(chan struct{})
	go func() {
		defer wg.Done()
		v.Sleep(5 * time.Second)
		close(done)
	}()
	// Wait for the sleeper to register.
	for v.Pending() == 0 {
		time.Sleep(time.Millisecond)
	}
	v.Advance(5 * time.Second)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Sleep never returned")
	}
	wg.Wait()
}

func TestVirtualSleepZeroReturnsImmediately(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	doneCh := make(chan struct{})
	go func() {
		v.Sleep(0)
		close(doneCh)
	}()
	select {
	case <-doneCh:
	case <-time.After(time.Second):
		t.Fatal("Sleep(0) blocked")
	}
}

func TestVirtualMultipleWaitersWakeInOrder(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	a := v.After(1 * time.Second)
	b := v.After(2 * time.Second)
	c := v.After(3 * time.Second)
	v.Advance(10 * time.Second)
	for i, ch := range []<-chan time.Time{a, b, c} {
		select {
		case <-ch:
		default:
			t.Fatalf("waiter %d not woken", i)
		}
	}
	if v.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", v.Pending())
	}
}
