// Package clock provides an injectable time source so that the Flex
// simulator, emulator, telemetry pipeline, and controllers can run against
// either wall-clock time (production-like runs) or a deterministic virtual
// clock (tests and fast experiments).
package clock

import (
	"sync"
	"time"
)

// Clock is the time source used by every time-dependent Flex component.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Sleep blocks the calling goroutine for d of this clock's time.
	Sleep(d time.Duration)
	// After returns a channel that delivers the clock's time after d.
	After(d time.Duration) <-chan time.Time
}

// Real is a Clock backed by the system wall clock.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// waiter is a goroutine blocked on a Virtual clock until its deadline.
type waiter struct {
	deadline time.Time
	ch       chan time.Time
}

// Virtual is a deterministic, manually advanced Clock. Goroutines that
// Sleep or After on a Virtual clock block until Advance moves the clock
// past their deadline. The zero value is not usable; call NewVirtual.
type Virtual struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*waiter
}

// NewVirtual returns a Virtual clock starting at start.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Sleep implements Clock. It blocks until Advance moves the clock by at
// least d. A non-positive d returns immediately.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-v.After(d)
}

// After implements Clock.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	v.mu.Lock()
	if d <= 0 {
		now := v.now
		v.mu.Unlock()
		ch <- now
		return ch
	}
	v.waiters = append(v.waiters, &waiter{deadline: v.now.Add(d), ch: ch})
	v.mu.Unlock()
	return ch
}

// Advance moves the clock forward by d, waking every waiter whose deadline
// has been reached. Waiters are woken in deadline order so that a chain of
// timers fires deterministically.
func (v *Virtual) Advance(d time.Duration) {
	v.mu.Lock()
	v.now = v.now.Add(d)
	now := v.now
	var due, rest []*waiter
	for _, w := range v.waiters {
		if !w.deadline.After(now) {
			due = append(due, w)
		} else {
			rest = append(rest, w)
		}
	}
	v.waiters = rest
	v.mu.Unlock()
	// Wake outside the lock; channels are buffered so sends never block.
	for i := 0; i < len(due); i++ {
		min := i
		for j := i + 1; j < len(due); j++ {
			if due[j].deadline.Before(due[min].deadline) {
				min = j
			}
		}
		due[i], due[min] = due[min], due[i]
		due[i].ch <- now
	}
}

// Pending reports how many goroutines are blocked waiting on this clock.
func (v *Virtual) Pending() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.waiters)
}
