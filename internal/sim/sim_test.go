package sim

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"flex/internal/impact"
	"flex/internal/obs/tsdb"
	"flex/internal/placement"
	"flex/internal/power"
	"flex/internal/workload"
)

// placedRoom builds a small placed room for simulation tests.
func placedRoom(t *testing.T) *placement.Placement {
	t.Helper()
	room := placement.EmulationRoom()
	cfg := workload.DefaultTraceConfig(room.Topo.ProvisionedPower())
	cfg.WorkloadsPerCategory = 1 // the §V-C setup: one workload per category
	trace, err := workload.GenerateTrace(cfg, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	pl, err := placement.FlexOffline{BatchFraction: 0.33, MaxNodes: 150}.Place(context.Background(), room, trace)
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestExpandRacksMatchesPlacement(t *testing.T) {
	pl := placedRoom(t)
	racks := ExpandRacks(pl)
	wantRacks := 0
	var wantPow power.Watts
	for _, d := range pl.Placed() {
		wantRacks += d.Racks
		wantPow += d.TotalPower()
	}
	if len(racks) != wantRacks {
		t.Fatalf("racks = %d, want %d", len(racks), wantRacks)
	}
	var gotPow power.Watts
	ids := map[string]bool{}
	for _, r := range racks {
		gotPow += r.Allocated
		if ids[r.ID] {
			t.Fatalf("duplicate rack ID %s", r.ID)
		}
		ids[r.ID] = true
	}
	if math.Abs(float64(gotPow-wantPow)) > 1 {
		t.Fatalf("total allocated = %v, want %v", gotPow, wantPow)
	}
}

func TestManagedRacksConversion(t *testing.T) {
	pl := placedRoom(t)
	racks := ExpandRacks(pl)
	managed := ManagedRacks(racks)
	if len(managed) != len(racks) {
		t.Fatal("length mismatch")
	}
	for i := range racks {
		if managed[i].ID != racks[i].ID || managed[i].Pair != racks[i].Pair ||
			managed[i].FlexPower != racks[i].FlexPower {
			t.Fatalf("conversion mismatch at %d", i)
		}
	}
}

func TestSampleRackPowersHitsUtilization(t *testing.T) {
	pl := placedRoom(t)
	racks := ExpandRacks(pl)
	rng := rand.New(rand.NewSource(4))
	for _, util := range []float64{0.5, 0.8} {
		sample := SampleRackPowers(racks, util, rng)
		var total, alloc power.Watts
		for _, r := range racks {
			p := sample[r.ID]
			if p < 0 || p > r.Allocated+1 {
				t.Fatalf("rack %s power %v outside [0, %v]", r.ID, p, r.Allocated)
			}
			total += p
			alloc += r.Allocated
		}
		got := float64(total) / float64(alloc)
		// Clamping at the allocation can leave the total slightly under.
		if got > util+0.001 || got < util-0.02 {
			t.Fatalf("sampled utilization %.4f, want ≈%.2f", got, util)
		}
	}
}

func TestPairLoadFromRacksConserves(t *testing.T) {
	pl := placedRoom(t)
	racks := ExpandRacks(pl)
	rng := rand.New(rand.NewSource(4))
	sample := SampleRackPowers(racks, 0.8, rng)
	load := PairLoadFromRacks(pl.Room.Topo, racks, sample)
	var want power.Watts
	for _, p := range sample {
		want += p
	}
	if math.Abs(float64(load.Total()-want)) > 1 {
		t.Fatalf("pair load total %v, want %v", load.Total(), want)
	}
}

func TestRunFigure12ShapeAndMonotonicity(t *testing.T) {
	pl := placedRoom(t)
	pts, err := RunFigure12(Figure12Config{
		Placement:         pl,
		Scenario:          impact.Realistic1(),
		Utilizations:      []float64{0.72, 0.78, 0.84},
		SamplesPerFailure: 2,
		Seed:              11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// Higher utilization must impact at least as many racks (on average).
	if pts[0].Impacted.Mean > pts[2].Impacted.Mean {
		t.Fatalf("impact not increasing: %.2f → %.2f", pts[0].Impacted.Mean, pts[2].Impacted.Mean)
	}
	// At 84% utilization some action is necessary.
	if pts[2].Impacted.Mean <= 0 {
		t.Fatal("no impact at 84% utilization")
	}
	for _, p := range pts {
		for _, v := range []float64{p.Impacted.Mean, p.ShutDown.Mean, p.Throttled.Mean} {
			if v < 0 || v > 100 {
				t.Fatalf("percentage %v out of range at util %.2f", v, p.Utilization)
			}
		}
	}
}

func TestRunFigure12ScenarioOrdering(t *testing.T) {
	pl := placedRoom(t)
	run := func(s impact.Scenario) Figure12Point {
		pts, err := RunFigure12(Figure12Config{
			Placement:         pl,
			Scenario:          s,
			Utilizations:      []float64{0.82},
			SamplesPerFailure: 2,
			Seed:              11,
		})
		if err != nil {
			t.Fatal(err)
		}
		return pts[0]
	}
	e1 := run(impact.Extreme1())
	e2 := run(impact.Extreme2())
	// Paper Fig 12: Extreme-1 shuts down the most and throttles the
	// fewest; Extreme-2 is the mirror image.
	if e1.ShutDown.Mean <= e2.ShutDown.Mean {
		t.Errorf("Extreme-1 shutdowns %.1f%% should exceed Extreme-2 %.1f%%",
			e1.ShutDown.Mean, e2.ShutDown.Mean)
	}
	if e1.Throttled.Mean >= e2.Throttled.Mean {
		t.Errorf("Extreme-1 throttles %.1f%% should be below Extreme-2 %.1f%%",
			e1.Throttled.Mean, e2.Throttled.Mean)
	}
	// Extreme-1 impacts the fewest racks (shutdown recovers more power).
	if e1.Impacted.Mean > e2.Impacted.Mean {
		t.Errorf("Extreme-1 impacted %.1f%% should be <= Extreme-2 %.1f%%",
			e1.Impacted.Mean, e2.Impacted.Mean)
	}
}

func TestRunFigure12Validation(t *testing.T) {
	if _, err := RunFigure12(Figure12Config{}); err == nil {
		t.Fatal("expected error without placement")
	}
}

func TestDefaultUtilizations(t *testing.T) {
	us := DefaultUtilizations()
	if len(us) < 10 {
		t.Fatalf("got %d utilizations", len(us))
	}
	if math.Abs(us[0]-0.74) > 1e-9 || us[len(us)-1] < 0.845 {
		t.Fatalf("range = [%v, %v]", us[0], us[len(us)-1])
	}
}

// TestRunFigure12StoresSeries checks the tsdb hookup: every snapshot of
// the sweep lands in the store as labeled series on synthetic
// timestamps, with sane values.
func TestRunFigure12StoresSeries(t *testing.T) {
	pl := placedRoom(t)
	st := tsdb.NewStore(tsdb.Options{})
	_, err := RunFigure12(Figure12Config{
		Placement:         pl,
		Scenario:          impact.Realistic1(),
		Utilizations:      []float64{0.78, 0.84},
		SamplesPerFailure: 2,
		Seed:              11,
		Store:             st,
	})
	if err != nil {
		t.Fatal(err)
	}
	key := tsdb.SeriesKey("flex_sim_recovered_watts",
		[2]string{"scenario", "Realistic-1"}, [2]string{"util", "0.84"})
	s, ok := st.Lookup(key)
	if !ok {
		t.Fatalf("series %q missing; have %v", key, st.Names())
	}
	raw := s.Raw()
	// 2 samples × every UPS failure at this utilization.
	wantPoints := 2 * len(pl.Room.Topo.UPSes)
	if len(raw) != wantPoints {
		t.Fatalf("points = %d, want %d", len(raw), wantPoints)
	}
	var recovered float64
	for _, p := range raw {
		if p.Time.Before(simEpoch) {
			t.Fatalf("synthetic timestamp %v before epoch", p.Time)
		}
		recovered += p.Value
	}
	if recovered <= 0 {
		t.Fatal("no recovered watts at 84% utilization")
	}
	for _, name := range []string{"flex_sim_actions", "flex_sim_worst_overload_watts", "flex_sim_insufficient"} {
		if _, ok := st.Lookup(tsdb.SeriesKey(name,
			[2]string{"scenario", "Realistic-1"}, [2]string{"util", "0.78"})); !ok {
			t.Fatalf("series %s missing", name)
		}
	}
}
