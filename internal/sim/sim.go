// Package sim implements the snapshot-based Flex-Online evaluation of the
// paper's §V-B (Figure 12): place a demand trace with Flex-Offline, sample
// per-rack power draws at a target room utilization, fail each UPS in
// turn, run Algorithm 1 on the resulting overdraw, and report the average
// percentage of racks impacted, shut down, and throttled.
package sim

import (
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"flex/internal/controller"
	"flex/internal/impact"
	"flex/internal/obs/recorder"
	"flex/internal/obs/tsdb"
	"flex/internal/placement"
	"flex/internal/power"
	"flex/internal/stats"
	"flex/internal/workload"
)

// Rack is one physical rack expanded from a placed deployment.
type Rack struct {
	ID        string
	Workload  string
	Category  workload.Category
	Pair      power.PDUPairID
	Allocated power.Watts
	FlexPower power.Watts
}

// ExpandRacks turns a placement into individual racks (deployments are
// homogeneous: every rack inherits the deployment's power and flex power).
func ExpandRacks(pl *placement.Placement) []Rack {
	var out []Rack
	for _, d := range pl.Placed() {
		pid := pl.Assignments[d.ID]
		for i := 0; i < d.Racks; i++ {
			out = append(out, Rack{
				ID:        fmt.Sprintf("dep%03d-rack%02d", d.ID, i),
				Workload:  d.Workload,
				Category:  d.Category,
				Pair:      pid,
				Allocated: d.PowerPerRack,
				FlexPower: d.FlexPowerPerRack(),
			})
		}
	}
	return out
}

// ManagedRacks converts racks to the controller's representation.
func ManagedRacks(racks []Rack) []controller.ManagedRack {
	out := make([]controller.ManagedRack, len(racks))
	for i, r := range racks {
		out[i] = controller.ManagedRack{
			ID:        r.ID,
			Workload:  r.Workload,
			Category:  r.Category,
			Pair:      r.Pair,
			Allocated: r.Allocated,
			FlexPower: r.FlexPower,
		}
	}
	return out
}

// SampleRackPowers draws a per-rack power snapshot at the given room
// utilization: each rack draws a truncated-normal share of its allocation
// (modelling the paper's "historical rack power distributions"), then the
// snapshot is scaled so that total draw = utilization × total allocated.
func SampleRackPowers(racks []Rack, utilization float64, rng *rand.Rand) map[string]power.Watts {
	out := make(map[string]power.Watts, len(racks))
	var total, alloc power.Watts
	for _, r := range racks {
		frac := utilization + rng.NormFloat64()*0.06
		if frac < 0.3 {
			frac = 0.3
		}
		if frac > 1 {
			frac = 1
		}
		p := power.Watts(frac * float64(r.Allocated))
		out[r.ID] = p
		total += p
		alloc += r.Allocated
	}
	if total <= 0 {
		return out
	}
	scale := utilization * float64(alloc) / float64(total)
	for _, r := range racks {
		v := power.Watts(float64(out[r.ID]) * scale)
		if v > r.Allocated { // keep within the rack's physical allocation
			v = r.Allocated
		}
		out[r.ID] = v
	}
	return out
}

// PairLoadFromRacks aggregates a rack power snapshot onto PDU-pairs.
func PairLoadFromRacks(topo *power.Topology, racks []Rack, rackPower map[string]power.Watts) power.PairLoad {
	load := power.NewPairLoad(topo)
	for _, r := range racks {
		load[r.Pair] += rackPower[r.ID]
	}
	return load
}

// Figure12Config drives RunFigure12.
type Figure12Config struct {
	// Placement is the placed room (typically Flex-Offline-Short on the
	// default trace in the paper room).
	Placement *placement.Placement
	// Scenario is the impact-function scenario under study.
	Scenario impact.Scenario
	// Utilizations are the x-axis points (e.g. 0.74 … 0.85).
	Utilizations []float64
	// SamplesPerFailure is how many power snapshots to draw per (failure,
	// utilization); the paper varies draws via its rack power
	// distributions.
	SamplesPerFailure int
	// Buffer is the controller safety margin.
	Buffer power.Watts
	// Seed drives sampling.
	Seed int64
	// Recorder, when non-nil, logs each (failure, sample) snapshot as an
	// episode: ups-fail → plan-start → planned actions → plan-commit.
	// Snapshot runs are timeless and headerless — the events carry zero
	// timestamps and the log is for /events browsing, not for flexreplay
	// (which needs an emulation recording with a replay header).
	Recorder *recorder.Recorder
	// Store, when non-nil, records each snapshot's derived safety
	// quantities as tsdb series labeled by scenario and utilization:
	// recovered watts, action count, pre-shed worst survivor overload,
	// and an insufficient flag. Snapshot runs are timeless, so points get
	// synthetic timestamps — a fixed epoch plus one second per snapshot —
	// which keeps the store's rollups and /query usable on the result
	// without touching a wall clock.
	Store *tsdb.Store
}

// simEpoch anchors the synthetic snapshot timestamps (the same fixed
// date the virtual-clock emulation starts at).
var simEpoch = time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)

// Figure12Point is one x-axis point of Figure 12 for one scenario.
type Figure12Point struct {
	Utilization float64
	// Impacted is the percentage of all racks acted on (Fig 12a).
	Impacted stats.MeanStd
	// ShutDown is the percentage of shut-down-able (software-redundant)
	// racks that were shut down (Fig 12b).
	ShutDown stats.MeanStd
	// Throttled is the percentage of throttle-able (non-redundant
	// cap-able) racks that were throttled (Fig 12c).
	Throttled stats.MeanStd
	// Insufficient counts runs where Algorithm 1 ran out of shaveable
	// racks before reaching safety.
	Insufficient int
}

// RunFigure12 produces the Figure 12 series for one scenario: for every
// utilization and every single-UPS failure, sample rack powers, compute
// the post-failover UPS loads, run Algorithm 1, and aggregate.
func RunFigure12(cfg Figure12Config) ([]Figure12Point, error) {
	if cfg.Placement == nil {
		return nil, fmt.Errorf("sim: placement required")
	}
	if cfg.SamplesPerFailure <= 0 {
		cfg.SamplesPerFailure = 3
	}
	topo := cfg.Placement.Room.Topo
	racks := ExpandRacks(cfg.Placement)
	if len(racks) == 0 {
		return nil, fmt.Errorf("sim: placement has no racks")
	}
	managed := ManagedRacks(racks)
	totalRacks := len(racks)
	srRacks, capRacks := 0, 0
	for _, r := range racks {
		switch r.Category {
		case workload.SoftwareRedundant:
			srRacks++
		case workload.NonRedundantCapable:
			capRacks++
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	var out []Figure12Point
	snapshots := 0
	for _, util := range cfg.Utilizations {
		pt := Figure12Point{Utilization: util}
		var impacted, shut, throttled []float64
		for f := range topo.UPSes {
			for s := 0; s < cfg.SamplesPerFailure; s++ {
				rackPower := SampleRackPowers(racks, util, rng)
				load := PairLoadFromRacks(topo, racks, rackPower)
				ups := topo.FailoverLoads(load, power.UPSID(f))
				inactive := map[power.UPSID]bool{power.UPSID(f): true}
				actions, insufficient, err := controller.Plan(controller.PlanInput{
					Topo:      topo,
					Racks:     managed,
					UPSPower:  ups,
					RackPower: rackPower,
					Inactive:  inactive,
					Scenario:  cfg.Scenario,
					Buffer:    cfg.Buffer,
				})
				if err != nil {
					return nil, err
				}
				if insufficient {
					pt.Insufficient++
				}
				if cfg.Recorder != nil {
					recordSnapshot(cfg.Recorder, topo.UPSes[f].Name, util, actions, insufficient)
				}
				nShut, nThrottle := 0, 0
				var recovered power.Watts
				for _, a := range actions {
					recovered += a.Recovered
					if a.Kind == controller.Shutdown {
						nShut++
					} else {
						nThrottle++
					}
				}
				if cfg.Store != nil {
					storeSnapshot(cfg.Store, cfg.Scenario.Name, util, snapshots,
						topo, ups, power.UPSID(f), recovered, len(actions), insufficient)
				}
				snapshots++
				impacted = append(impacted, 100*float64(len(actions))/float64(totalRacks))
				if srRacks > 0 {
					shut = append(shut, 100*float64(nShut)/float64(srRacks))
				}
				if capRacks > 0 {
					throttled = append(throttled, 100*float64(nThrottle)/float64(capRacks))
				}
			}
		}
		pt.Impacted = stats.MeanStdOf(impacted)
		pt.ShutDown = stats.MeanStdOf(shut)
		pt.Throttled = stats.MeanStdOf(throttled)
		out = append(out, pt)
	}
	return out, nil
}

// recordSnapshot logs one Figure 12 snapshot as a causally-chained
// episode on the flight recorder.
func recordSnapshot(rec *recorder.Recorder, upsName string, util float64, actions []controller.PlannedAction, insufficient bool) {
	ep := rec.NextEpisode()
	fail := rec.Emit(recorder.Event{
		Type:    recorder.TypeUPSFail,
		Actor:   "fig12",
		Subject: upsName,
		Value:   util,
		Episode: ep,
	})
	plan := rec.Emit(recorder.Event{
		Type:    recorder.TypePlanStart,
		Actor:   "fig12",
		Subject: upsName,
		Cause:   fail,
		Episode: ep,
	})
	var recovered power.Watts
	for _, a := range actions {
		recovered += a.Recovered
		rec.Emit(recorder.Event{
			Type:    recorder.TypeActionPlanned,
			Actor:   "fig12",
			Subject: a.Rack,
			Value:   float64(a.Recovered),
			Score:   a.Impact,
			Aux:     int64(a.Kind),
			Detail:  a.Workload,
			Cause:   plan,
			Episode: ep,
		})
	}
	commit := recorder.Event{
		Type:    recorder.TypePlanCommit,
		Actor:   "fig12",
		Subject: upsName,
		Value:   float64(recovered),
		Aux:     int64(len(actions)),
		Cause:   plan,
		Episode: ep,
	}
	if insufficient {
		commit.Detail = "insufficient"
	}
	rec.Emit(commit)
}

// storeSnapshot appends one Figure 12 snapshot's derived quantities to
// the tsdb store: what the plan recovered, how many racks it touched,
// the worst pre-shed survivor overload, and whether shaveable power ran
// out. Series are labeled by scenario and utilization so a /query
// client can slice the sweep either way.
func storeSnapshot(st *tsdb.Store, scenario string, util float64, snap int,
	topo *power.Topology, ups []power.Watts, failed power.UPSID,
	recovered power.Watts, actions int, insufficient bool) {
	ts := simEpoch.Add(time.Duration(snap) * time.Second)
	labels := [2][2]string{
		{"scenario", scenario},
		{"util", strconv.FormatFloat(util, 'f', 2, 64)},
	}
	var overload power.Watts
	for v := range topo.UPSes {
		if power.UPSID(v) == failed {
			continue
		}
		if over := ups[v] - topo.UPSes[v].Capacity; over > overload {
			overload = over
		}
	}
	insuff := 0.0
	if insufficient {
		insuff = 1
	}
	for _, s := range []struct {
		name  string
		value float64
	}{
		{"flex_sim_recovered_watts", float64(recovered)},
		{"flex_sim_actions", float64(actions)},
		{"flex_sim_worst_overload_watts", float64(overload)},
		{"flex_sim_insufficient", insuff},
	} {
		st.Series(tsdb.SeriesKey(s.name, labels[0], labels[1])).Append(ts, s.value)
	}
}

// DefaultUtilizations returns the paper's Figure 12 x-axis range:
// 74%–85% in 1% steps ("no actions are needed at utilizations lower than
// 74% and sustained utilizations higher than 85% are impractical").
func DefaultUtilizations() []float64 {
	var out []float64
	for u := 0.74; u <= 0.851; u += 0.01 {
		out = append(out, u)
	}
	return out
}
