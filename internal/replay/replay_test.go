package replay_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	"flex/internal/emu"
	"flex/internal/obs/recorder"
	"flex/internal/replay"
)

// recordShortEpisode runs the compressed §V-C emulation (1s ticks, UPS
// failure at 4 minutes, recovery at 7) with a flight recorder attached
// and returns the full event log.
func recordShortEpisode(t *testing.T) []recorder.Event {
	t.Helper()
	rec := recorder.New(1 << 18)
	var buf bytes.Buffer
	rec.AttachSink(recorder.NewSink(&buf))
	_, err := emu.Run(context.Background(), emu.Config{
		Tick:      time.Second,
		FailAt:    4 * time.Minute,
		RecoverAt: 7 * time.Minute,
		Duration:  10 * time.Minute,
		Seed:      1,
		Recorder:  rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Overwritten() != 0 {
		t.Fatalf("ring overwrote %d events; grow the capacity so the log is complete", rec.Overwritten())
	}
	if err := rec.DetachSink(); err != nil {
		t.Fatalf("sink: %v", err)
	}

	// The JSONL sink and the in-memory ring must agree exactly.
	fromSink, err := recorder.ReadEvents(&buf)
	if err != nil {
		t.Fatalf("reading sink log: %v", err)
	}
	events := rec.Snapshot()
	if len(fromSink) != len(events) {
		t.Fatalf("sink has %d events, ring has %d", len(fromSink), len(events))
	}
	for i := range events {
		if fromSink[i] != events[i] {
			t.Fatalf("event %d differs across sink/ring:\n%+v\n%+v", i, fromSink[i], events[i])
		}
	}
	return fromSink
}

// TestReplayEmulationEmptyDiff is the tentpole acceptance check: a
// recorded single-UPS-failure episode replays to the identical action
// sequence — the decision diff is empty.
func TestReplayEmulationEmptyDiff(t *testing.T) {
	if testing.Short() {
		t.Skip("full emulation in -short mode")
	}
	events := recordShortEpisode(t)

	rep, err := replay.Replay(context.Background(), events)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Episodes == 0 {
		t.Fatal("no overdraw episodes recorded")
	}
	if len(rep.Plans) == 0 {
		t.Fatal("no planning passes recorded")
	}
	var committed int
	for _, p := range rep.Plans {
		if !p.Aborted && p.Recorded > 0 {
			committed++
		}
	}
	if committed == 0 {
		t.Fatal("no committed plans with actions")
	}
	for _, p := range rep.Plans {
		if !p.Match {
			t.Errorf("plan seq=%d actor=%s episode=%d diverged: %s", p.Seq, p.Actor, p.Episode, p.Mismatch)
		}
	}
	if !rep.DiffEmpty() {
		t.Fatalf("decision diff not empty: %d/%d plans diverged", rep.Mismatched, len(rep.Plans))
	}
	if rep.Elapsed <= 0 {
		t.Fatalf("virtual clock did not advance: %v", rep.Elapsed)
	}
}

// TestReplayEpisodeChain asserts the recorded log carries the complete
// causal chain of the first episode: triggering sample-arrive through
// detection, plan, dispatch, and ack.
func TestReplayEpisodeChain(t *testing.T) {
	if testing.Short() {
		t.Skip("full emulation in -short mode")
	}
	events := recordShortEpisode(t)

	var episode uint64
	for i := range events {
		if events[i].Type == recorder.TypeOverdrawDetect {
			episode = events[i].Episode
			break
		}
	}
	if episode == 0 {
		t.Fatal("no overdraw detection in the log")
	}
	chain := recorder.ApplyFilter(events, recorder.Filter{Episode: episode, WithCauses: true})
	got := map[recorder.Type]int{}
	for _, e := range chain {
		got[e.Type]++
	}
	for _, want := range []recorder.Type{
		recorder.TypeSampleArrive, // pulled in through Cause links
		recorder.TypeOverdrawDetect,
		recorder.TypePlanStart,
		recorder.TypeActionPlanned,
		recorder.TypePlanCommit,
		recorder.TypeActionDispatch,
		recorder.TypeActionAck,
	} {
		if got[want] == 0 {
			t.Errorf("episode %d closure has no %v events (have %v)", episode, want, got)
		}
	}
}

func TestReplayRejectsHeaderlessLog(t *testing.T) {
	events := []recorder.Event{{Seq: 1, Type: recorder.TypePlanStart}}
	if _, err := replay.Replay(context.Background(), events); err == nil {
		t.Fatal("headerless log accepted")
	}
	if _, err := replay.Replay(context.Background(), nil); err == nil {
		t.Fatal("empty log accepted")
	}
}
