// Package replay deterministically re-drives Flex-Online planning from a
// flight-recorder episode log and diffs the replayed decisions against
// the recorded ones, turning every shed episode into a reproducible
// artifact (cmd/flexreplay is the CLI front end).
//
// A recorded run starts with a meta event whose Detail is a JSON Header:
// the room, scenario, safety margins and managed-rack set the controllers
// ran with. Replay reconstructs each controller's exact PlanInput from
// the event stream — sample-arrive events rebuild the telemetry views,
// action-ack events rebuild the per-controller acted sets — and calls
// controller.PlanContext at every recorded plan-start, advancing a
// virtual clock to the recorded timestamps. Because Algorithm 1 is
// deterministic in its inputs, a faithful log replays to the identical
// action sequence; any diff means the log is incomplete or the planner
// changed behaviour.
package replay

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"time"

	"flex/internal/clock"
	"flex/internal/controller"
	"flex/internal/impact"
	"flex/internal/obs/recorder"
	"flex/internal/placement"
	"flex/internal/power"
	"flex/internal/workload"
)

// View roles used in sample-arrive events. Recorders (emu, flexmon) tag
// the controller-facing views with these so replay knows which view a
// sample landed in.
const (
	RoleUPSView  = "ups-view"
	RoleRackView = "rack-view"
)

// HeaderVersion is the current header schema version.
const HeaderVersion = 1

// Header is the episode-log preamble, carried as JSON in the Detail of
// the leading meta event. It pins everything a replay needs that the
// event stream itself does not carry.
type Header struct {
	Version int `json:"version"`
	// Room names the topology: "emulation" (placement.EmulationRoom) or
	// "paper" (placement.PaperRoom).
	Room string `json:"room"`
	// Start is the virtual-clock origin of the run.
	Start time.Time `json:"start"`
	// Scenario names the impact scenario (impact.Figure11Scenarios or
	// "Default").
	Scenario string `json:"scenario"`
	// Buffer is the controllers' safety margin in watts (0 = the
	// controller default, 1% of the smallest UPS capacity).
	Buffer float64 `json:"buffer"`
	// InactiveThreshold is the out-of-service capacity fraction (0 = the
	// controller default).
	InactiveThreshold float64 `json:"inactive_threshold"`
	// RackEstimator is true when the controllers planned from EWMA
	// estimator bounds instead of the raw rack view.
	RackEstimator bool `json:"rack_estimator,omitempty"`
	// Utilization, Seed and Controllers are informational.
	Utilization float64  `json:"utilization,omitempty"`
	Seed        int64    `json:"seed,omitempty"`
	Controllers []string `json:"controllers,omitempty"`
	// Racks is the managed-rack set handed to every controller.
	Racks []HeaderRack `json:"racks"`
}

// HeaderRack mirrors controller.ManagedRack in a JSON-stable shape.
type HeaderRack struct {
	ID        string  `json:"id"`
	Workload  string  `json:"workload"`
	Category  int     `json:"category"`
	Pair      int     `json:"pair"`
	Allocated float64 `json:"allocated"`
	FlexPower float64 `json:"flex_power"`
	Priority  int     `json:"priority,omitempty"`
}

// NewHeader builds a Header from the live objects a recording harness
// holds.
func NewHeader(room string, start time.Time, scenario string, buffer power.Watts, racks []controller.ManagedRack) Header {
	h := Header{
		Version:  HeaderVersion,
		Room:     room,
		Start:    start,
		Scenario: scenario,
		Buffer:   float64(buffer),
		Racks:    make([]HeaderRack, len(racks)),
	}
	for i, r := range racks {
		h.Racks[i] = HeaderRack{
			ID:        r.ID,
			Workload:  r.Workload,
			Category:  int(r.Category),
			Pair:      int(r.Pair),
			Allocated: float64(r.Allocated),
			FlexPower: float64(r.FlexPower),
			Priority:  r.Priority,
		}
	}
	return h
}

// MetaEvent renders the header as the leading meta event of a recording.
func (h Header) MetaEvent(at time.Time, actor string) (recorder.Event, error) {
	b, err := json.Marshal(h)
	if err != nil {
		return recorder.Event{}, err
	}
	return recorder.Event{
		Type:   recorder.TypeMeta,
		Time:   at,
		Actor:  actor,
		Detail: string(b),
	}, nil
}

// PlanResult is the replay verdict for one recorded planning pass.
type PlanResult struct {
	// Seq is the recorded plan-start event sequence.
	Seq     uint64
	Episode uint64
	Actor   string
	At      time.Time
	// Recorded and Replayed are the action counts on each side.
	Recorded, Replayed int
	// Aborted is true when the recorded pass hit its budget; the
	// recorded actions are then checked as a prefix of the replayed full
	// plan instead of an exact match.
	Aborted bool
	Match   bool
	// Mismatch explains the first divergence when Match is false.
	Mismatch string
}

// Report summarizes a replay.
type Report struct {
	Header Header
	// Events is the total number of events consumed.
	Events int
	// Episodes is the number of distinct overdraw episodes seen.
	Episodes int
	Plans    []PlanResult
	Matched  int
	// Mismatched counts diverging plans; 0 means the decision diff is
	// empty and the log reproduces exactly.
	Mismatched int
	// Elapsed is the recorded span replayed on the virtual clock.
	Elapsed time.Duration
}

// DiffEmpty reports whether every recorded plan replayed identically.
func (r *Report) DiffEmpty() bool { return r.Mismatched == 0 }

type upsReading struct {
	watts power.Watts
	at    time.Time
}

// Replay re-drives every recorded planning pass and diffs the decisions.
// Events must be in sequence order (as returned by recorder.ReadEvents or
// Recorder.Snapshot) and must start with the meta header. ctx bounds the
// re-run planning passes exactly as it would bound live ones; replaying a
// long log is interruptible at every plan.
func Replay(ctx context.Context, events []recorder.Event) (*Report, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("replay: empty event log")
	}
	if events[0].Type != recorder.TypeMeta {
		return nil, fmt.Errorf("replay: log does not start with a meta header (got %v); record with a header-emitting harness (flexsim -experiment episode)", events[0].Type)
	}
	var hdr Header
	if err := json.Unmarshal([]byte(events[0].Detail), &hdr); err != nil {
		return nil, fmt.Errorf("replay: parsing meta header: %w", err)
	}
	if hdr.Version != HeaderVersion {
		return nil, fmt.Errorf("replay: header version %d, want %d", hdr.Version, HeaderVersion)
	}
	room, err := roomByName(hdr.Room)
	if err != nil {
		return nil, err
	}
	topo := room.Topo
	scenario, err := scenarioByName(hdr.Scenario)
	if err != nil {
		return nil, err
	}
	racks := make([]controller.ManagedRack, len(hdr.Racks))
	for i, r := range hdr.Racks {
		racks[i] = controller.ManagedRack{
			ID:        r.ID,
			Workload:  r.Workload,
			Category:  workload.Category(r.Category),
			Pair:      power.PDUPairID(r.Pair),
			Allocated: power.Watts(r.Allocated),
			FlexPower: power.Watts(r.FlexPower),
			Priority:  r.Priority,
		}
	}
	buffer := power.Watts(hdr.Buffer)
	if buffer == 0 {
		buffer = controller.DefaultBuffer(topo)
	}
	threshold := hdr.InactiveThreshold
	if threshold == 0 {
		threshold = controller.DefaultInactiveThreshold
	}

	vclk := clock.NewVirtual(hdr.Start)
	last := hdr.Start
	upsView := make(map[string]upsReading)
	rackView := make(map[string]power.Watts)
	estView := make(map[string]power.Watts)
	acted := make(map[string]map[string]bool) // controller → racks acted on
	episodes := make(map[uint64]bool)

	rep := &Report{Header: hdr, Events: len(events)}
	for i := range events {
		e := &events[i]
		// Drive the virtual clock to the recorded instant; recordings are
		// seq-ordered and seq order never runs ahead of time order within
		// one emitter, but cross-emitter timestamps may interleave.
		if e.Time.After(last) {
			vclk.Advance(e.Time.Sub(last))
			last = e.Time
		}
		if e.Episode != 0 {
			episodes[e.Episode] = true
		}
		switch e.Type {
		case recorder.TypeSampleArrive:
			switch e.Actor {
			case RoleUPSView:
				upsView[e.Subject] = upsReading{power.Watts(e.Value), e.Time}
			case RoleRackView:
				rackView[e.Subject] = power.Watts(e.Value)
			}
		case recorder.TypeEstimatorBound:
			estView[e.Subject] = power.Watts(e.Value)
		case recorder.TypeActionAck:
			if e.Actor == "" {
				continue
			}
			set := acted[e.Actor]
			if set == nil {
				set = make(map[string]bool)
				acted[e.Actor] = set
			}
			switch e.Detail {
			case "throttle", "shutdown":
				set[e.Subject] = true
			case "restore":
				delete(set, e.Subject)
			}
		case recorder.TypePlanStart:
			pr := replayPlan(ctx, events[i:], e, topo, racks, scenario, buffer, threshold, hdr.RackEstimator, upsView, rackView, estView, acted[e.Actor])
			rep.Plans = append(rep.Plans, pr)
			if pr.Match {
				rep.Matched++
			} else {
				rep.Mismatched++
			}
		}
	}
	rep.Episodes = len(episodes)
	rep.Elapsed = vclk.Now().Sub(hdr.Start)
	return rep, nil
}

// replayPlan reconstructs the PlanInput visible to the recorded
// controller at its plan-start event, re-runs Algorithm 1, and diffs the
// outcome against the recorded action-planned events. tail begins at the
// plan-start event; the recorded actions and terminal (commit/abort/
// error) are found by scanning forward for events caused by it.
func replayPlan(ctx context.Context, tail []recorder.Event, start *recorder.Event,
	topo *power.Topology, racks []controller.ManagedRack, scenario impact.Scenario,
	buffer power.Watts, threshold float64, useEstimator bool,
	upsView map[string]upsReading, rackView, estView map[string]power.Watts,
	actedSet map[string]bool) PlanResult {

	pr := PlanResult{Seq: start.Seq, Episode: start.Episode, Actor: start.Actor, At: start.Time}

	// Recorded outcome.
	var recActions []*recorder.Event
	var terminal *recorder.Event
	for i := 1; i < len(tail) && terminal == nil; i++ {
		e := &tail[i]
		if e.Cause != start.Seq {
			continue
		}
		switch e.Type {
		case recorder.TypeActionPlanned:
			recActions = append(recActions, e)
		case recorder.TypePlanCommit, recorder.TypePlanAbort, recorder.TypePlanError:
			terminal = e
		}
	}
	pr.Recorded = len(recActions)
	if terminal == nil {
		pr.Mismatch = "recorded plan has no terminal event (truncated log?)"
		return pr
	}
	if terminal.Type == recorder.TypePlanError {
		// Nothing to diff: the recorded pass failed before choosing
		// actions. Count it as matched only if replay also fails.
		pr.Mismatch = "recorded plan errored: " + terminal.Detail
		return pr
	}
	pr.Aborted = terminal.Type == recorder.TypePlanAbort

	// Reconstructed input, exactly as Controller.StepContext builds it:
	// UPSes without a reading are assumed at capacity, inactivity is
	// inferred, and racks already acted on are excluded.
	ups := make([]power.Watts, len(topo.UPSes))
	for u := range topo.UPSes {
		if r, ok := upsView[topo.UPSes[u].Name]; ok {
			ups[u] = r.watts
		} else {
			ups[u] = topo.UPSes[u].Capacity
		}
	}
	inactive := controller.InferInactiveUPSes(topo, ups, threshold)
	src := rackView
	if useEstimator {
		src = estView
	}
	rackPower := make(map[string]power.Watts, len(src))
	for k, v := range src {
		rackPower[k] = v
	}
	actedCopy := make(map[string]bool, len(actedSet))
	for k := range actedSet {
		actedCopy[k] = true
	}
	replayed, insufficient, err := controller.PlanContext(ctx, controller.PlanInput{
		Topo:      topo,
		Racks:     racks,
		UPSPower:  ups,
		RackPower: rackPower,
		Inactive:  inactive,
		Scenario:  scenario,
		Buffer:    buffer,
		Acted:     actedCopy,
	})
	if err != nil {
		pr.Mismatch = fmt.Sprintf("replayed plan errored: %v", err)
		return pr
	}
	pr.Replayed = len(replayed)

	// Diff. An aborted recording is a budget-truncated prefix of the full
	// deterministic plan; a committed recording must match exactly,
	// including the insufficient verdict.
	if pr.Aborted {
		if len(recActions) > len(replayed) {
			pr.Mismatch = fmt.Sprintf("aborted plan recorded %d actions, replay produced only %d", len(recActions), len(replayed))
			return pr
		}
	} else {
		if len(recActions) != len(replayed) {
			pr.Mismatch = fmt.Sprintf("recorded %d actions, replayed %d", len(recActions), len(replayed))
			return pr
		}
		recInsufficient := terminal.Detail == "insufficient"
		if recInsufficient != insufficient {
			pr.Mismatch = fmt.Sprintf("insufficient: recorded %v, replayed %v", recInsufficient, insufficient)
			return pr
		}
	}
	for i, re := range recActions {
		if why := actionDiff(re, replayed[i]); why != "" {
			pr.Mismatch = fmt.Sprintf("action %d: %s", i, why)
			return pr
		}
	}
	pr.Match = true
	return pr
}

func actionDiff(re *recorder.Event, a controller.PlannedAction) string {
	if re.Subject != a.Rack {
		return fmt.Sprintf("rack %s recorded, %s replayed", re.Subject, a.Rack)
	}
	if re.Aux != int64(a.Kind) {
		return fmt.Sprintf("%s: kind %v recorded, %v replayed", a.Rack, controller.ActionKind(re.Aux), a.Kind)
	}
	if !floatsClose(re.Value, float64(a.Recovered)) {
		return fmt.Sprintf("%s: recovered %.3f recorded, %.3f replayed", a.Rack, re.Value, float64(a.Recovered))
	}
	if !floatsClose(re.Score, a.Impact) {
		return fmt.Sprintf("%s: impact %.6f recorded, %.6f replayed", a.Rack, re.Score, a.Impact)
	}
	return ""
}

// floatsClose tolerates JSON round-trip and platform FMA noise; recorded
// and replayed values come from bit-identical inputs, so the bound is
// tight.
func floatsClose(a, b float64) bool {
	d := math.Abs(a - b)
	return d <= 1e-6 || d <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

func roomByName(name string) (*placement.Room, error) {
	switch name {
	case "emulation":
		return placement.EmulationRoom(), nil
	case "paper":
		return placement.PaperRoom(), nil
	default:
		return nil, fmt.Errorf("replay: unknown room %q", name)
	}
}

func scenarioByName(name string) (impact.Scenario, error) {
	for _, s := range impact.Figure11Scenarios() {
		if s.Name == name {
			return s, nil
		}
	}
	if d := impact.Default(); name == d.Name || name == "" {
		return d, nil
	}
	return impact.Scenario{}, fmt.Errorf("replay: unknown impact scenario %q", name)
}
