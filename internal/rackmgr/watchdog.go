package rackmgr

import (
	"context"
	"fmt"
	"sync"
	"time"

	"flex/internal/clock"
	"flex/internal/obs/recorder"
)

// Alert is a problem the background verification service found with a
// rack's actuation path (paper §VI: the service "warns operators and
// engineers to take immediate remedial actions").
type Alert struct {
	Rack   string
	Reason string
	At     time.Time
}

// Watchdog is the paper's §VI background service: it periodically checks
// firmware status and network reachability for every rack manager and
// injects fake (dry-run) actions to prove that a real corrective action
// would succeed during an actual maintenance event.
type Watchdog struct {
	Manager  *Manager
	Clock    clock.Clock
	Interval time.Duration
	// OnAlert receives every alert; nil alerts are collected internally
	// and available via Alerts.
	OnAlert func(Alert)

	mu     sync.Mutex
	alerts []Alert
	sweeps int
}

// NewWatchdog builds a watchdog with the given sweep interval (default 30
// seconds).
func NewWatchdog(m *Manager, clk clock.Clock, interval time.Duration) *Watchdog {
	if interval <= 0 {
		interval = 30 * time.Second
	}
	return &Watchdog{Manager: m, Clock: clk, Interval: interval}
}

// SweepOnce verifies every rack's control path once, returning the alerts
// raised. A "fake action" is exercised by checking health and simulating a
// no-op command path (reachability + firmware gates are exactly the gates
// a real command passes through).
func (w *Watchdog) SweepOnce() []Alert {
	var raised []Alert
	now := w.Clock.Now()
	for _, id := range w.Manager.RackIDs() {
		if err := w.Manager.Health(id); err != nil {
			raised = append(raised, Alert{
				Rack:   id,
				Reason: fmt.Sprintf("fake action failed: %v", err),
				At:     now,
			})
		}
	}
	w.mu.Lock()
	w.sweeps++
	w.alerts = append(w.alerts, raised...)
	cb := w.OnAlert
	w.mu.Unlock()
	if m := w.Manager.Metrics; m != nil {
		m.WatchdogSweeps.Inc()
		if len(raised) > 0 {
			m.WatchdogAlerts.Add(uint64(len(raised)))
		}
	}
	if rec := w.Manager.Recorder; rec != nil {
		for _, a := range raised {
			rec.Emit(recorder.Event{
				Type:    recorder.TypeWatchdogAlert,
				Time:    a.At,
				Actor:   "watchdog",
				Subject: a.Rack,
				Detail:  a.Reason,
			})
		}
	}
	if cb != nil {
		for _, a := range raised {
			cb(a)
		}
	}
	return raised
}

// Run sweeps until ctx is cancelled.
func (w *Watchdog) Run(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		default:
		}
		w.SweepOnce()
		select {
		case <-ctx.Done():
			return
		case <-w.Clock.After(w.Interval):
		}
	}
}

// Alerts returns all alerts raised so far.
func (w *Watchdog) Alerts() []Alert {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]Alert(nil), w.alerts...)
}

// Sweeps reports how many sweeps have completed.
func (w *Watchdog) Sweeps() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sweeps
}
