package rackmgr

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"flex/internal/clock"
	"flex/internal/power"
)

func newMgr() *Manager {
	return NewManager(clock.NewVirtual(time.Unix(0, 0)), []string{"r1", "r2", "r3"})
}

func TestPowerStateString(t *testing.T) {
	if On.String() != "on" || Throttled.String() != "throttled" || Off.String() != "off" {
		t.Error("state strings")
	}
	if PowerState(9).String() != "PowerState(9)" {
		t.Error("unknown state string")
	}
}

func TestThrottleShutdownRestoreCycle(t *testing.T) {
	m := newMgr()
	if err := m.Throttle("r1", 10*power.KW); err != nil {
		t.Fatal(err)
	}
	st, cap, err := m.State("r1")
	if err != nil || st != Throttled || cap != 10*power.KW {
		t.Fatalf("state = %v %v %v", st, cap, err)
	}
	if err := m.Shutdown("r1"); err != nil {
		t.Fatal(err)
	}
	st, _, _ = m.State("r1")
	if st != Off {
		t.Fatalf("state = %v, want Off", st)
	}
	if err := m.Restore("r1"); err != nil {
		t.Fatal(err)
	}
	st, cap, _ = m.State("r1")
	if st != On || cap != 0 {
		t.Fatalf("state = %v cap = %v, want On 0", st, cap)
	}
}

func TestThrottleOffRackRefused(t *testing.T) {
	m := newMgr()
	if err := m.Shutdown("r1"); err != nil {
		t.Fatal(err)
	}
	if err := m.Throttle("r1", power.KW); err == nil {
		t.Fatal("throttling an off rack should fail")
	}
}

func TestIdempotency(t *testing.T) {
	m := newMgr()
	_ = m.Shutdown("r1")
	if err := m.Shutdown("r1"); err != nil {
		t.Fatalf("duplicate shutdown errored: %v", err)
	}
	_ = m.Restore("r1")
	if err := m.Restore("r1"); err != nil {
		t.Fatalf("duplicate restore errored: %v", err)
	}
	_ = m.Throttle("r1", power.KW)
	if err := m.Throttle("r1", power.KW); err != nil {
		t.Fatalf("duplicate throttle errored: %v", err)
	}
	// The log marks duplicates as not effective.
	effective := 0
	for _, a := range m.Log() {
		if a.Effective {
			effective++
		}
	}
	if effective != 3 {
		t.Fatalf("effective actions = %d, want 3", effective)
	}
}

func TestUnknownRack(t *testing.T) {
	m := newMgr()
	if err := m.Throttle("nope", power.KW); !errors.Is(err, ErrUnknownRack) {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := m.State("nope"); !errors.Is(err, ErrUnknownRack) {
		t.Fatalf("err = %v", err)
	}
	if err := m.SetReachable("nope", false); !errors.Is(err, ErrUnknownRack) {
		t.Fatalf("err = %v", err)
	}
	if err := m.SetFirmwareOK("nope", false); !errors.Is(err, ErrUnknownRack) {
		t.Fatalf("err = %v", err)
	}
}

func TestUnreachableAndFirmwareGates(t *testing.T) {
	m := newMgr()
	_ = m.SetReachable("r1", false)
	if err := m.Shutdown("r1"); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
	_ = m.SetReachable("r1", true)
	_ = m.SetFirmwareOK("r1", false)
	if err := m.Shutdown("r1"); !errors.Is(err, ErrStaleFirmware) {
		t.Fatalf("err = %v, want ErrStaleFirmware", err)
	}
	_ = m.SetFirmwareOK("r1", true)
	if err := m.Shutdown("r1"); err != nil {
		t.Fatalf("healthy rack errored: %v", err)
	}
}

func TestActionLatencyCharged(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	m := NewManager(clk, []string{"r1"})
	m.ActionLatency = 2 * time.Second
	done := make(chan error, 1)
	go func() { done <- m.Throttle("r1", power.KW) }()
	// The action blocks until the clock advances.
	select {
	case <-done:
		t.Fatal("action completed without the latency elapsing")
	case <-time.After(20 * time.Millisecond):
	}
	clk.Advance(2 * time.Second)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("action never completed")
	}
}

func TestConcurrentControllersIdempotent(t *testing.T) {
	// Multiple controller primaries issue the same commands concurrently
	// (paper §IV-D: "actions are idempotent and taken independently").
	m := newMgr()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = m.Throttle("r2", 12*power.KW)
			_ = m.Shutdown("r3")
		}()
	}
	wg.Wait()
	st, cap, _ := m.State("r2")
	if st != Throttled || cap != 12*power.KW {
		t.Fatalf("r2 = %v %v", st, cap)
	}
	st, _, _ = m.State("r3")
	if st != Off {
		t.Fatalf("r3 = %v", st)
	}
}

func TestRackIDsSorted(t *testing.T) {
	m := NewManager(clock.NewVirtual(time.Unix(0, 0)), []string{"b", "a", "c"})
	ids := m.RackIDs()
	if len(ids) != 3 || ids[0] != "a" || ids[2] != "c" {
		t.Fatalf("RackIDs = %v", ids)
	}
}

func TestWatchdogDetectsBrokenPaths(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	m := NewManager(clk, []string{"r1", "r2"})
	w := NewWatchdog(m, clk, time.Minute)
	if alerts := w.SweepOnce(); len(alerts) != 0 {
		t.Fatalf("healthy fleet alerted: %v", alerts)
	}
	_ = m.SetReachable("r1", false)
	_ = m.SetFirmwareOK("r2", false)
	alerts := w.SweepOnce()
	if len(alerts) != 2 {
		t.Fatalf("alerts = %v, want 2", alerts)
	}
	if w.Sweeps() != 2 || len(w.Alerts()) != 2 {
		t.Fatalf("sweeps=%d alerts=%d", w.Sweeps(), len(w.Alerts()))
	}
}

func TestWatchdogCallback(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	m := NewManager(clk, []string{"r1"})
	w := NewWatchdog(m, clk, time.Minute)
	var mu sync.Mutex
	var got []Alert
	w.OnAlert = func(a Alert) {
		mu.Lock()
		got = append(got, a)
		mu.Unlock()
	}
	_ = m.SetReachable("r1", false)
	w.SweepOnce()
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0].Rack != "r1" {
		t.Fatalf("callback alerts = %v", got)
	}
}

func TestWatchdogRunLoop(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	m := NewManager(clk, []string{"r1"})
	w := NewWatchdog(m, clk, 10*time.Second)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go w.Run(ctx)
	deadline := time.Now().Add(2 * time.Second)
	for w.Sweeps() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if w.Sweeps() == 0 {
		t.Fatal("no sweep ran")
	}
	n := w.Sweeps()
	clk.Advance(11 * time.Second)
	for w.Sweeps() == n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if w.Sweeps() == n {
		t.Fatal("second sweep never ran")
	}
}
