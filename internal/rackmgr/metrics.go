package rackmgr

import "flex/internal/obs"

// Metrics instruments the actuation path. Attempt/failure counters are
// labelled by action kind and pre-bound at construction so logAction stays
// allocation-free. A nil *Metrics disables instrumentation.
type Metrics struct {
	attempts       [3]*obs.Counter // indexed by kindIndex
	failures       [3]*obs.Counter
	Noops          *obs.Counter
	WatchdogSweeps *obs.Counter
	WatchdogAlerts *obs.Counter
}

const (
	kindThrottle = iota
	kindShutdown
	kindRestore
)

func kindIndex(kind string) int {
	switch kind {
	case "shutdown":
		return kindShutdown
	case "restore":
		return kindRestore
	default:
		return kindThrottle
	}
}

// NewMetrics registers the rackmgr metrics on r (idempotent).
func NewMetrics(r *obs.Registry) *Metrics {
	attempts := r.CounterVec("flex_rackmgr_actions_total", "actuation attempts by kind", "kind")
	failures := r.CounterVec("flex_rackmgr_action_failures_total", "failed actuations by kind", "kind")
	m := &Metrics{
		Noops: r.Counter("flex_rackmgr_noop_actions_total",
			"idempotent duplicate actions that changed nothing"),
		WatchdogSweeps: r.Counter("flex_rackmgr_watchdog_sweeps_total", "background verification sweeps"),
		WatchdogAlerts: r.Counter("flex_rackmgr_watchdog_alerts_total", "alerts raised by the verification service"),
	}
	for i, kind := range []string{"throttle", "shutdown", "restore"} {
		m.attempts[i] = attempts.With(kind)
		m.failures[i] = failures.With(kind)
	}
	return m
}

// recordAction folds one audit-log entry into the counters (nil-safe; the
// manager's hot path).
func (m *Metrics) recordAction(a *Action) {
	if m == nil {
		return
	}
	i := kindIndex(a.Kind)
	m.attempts[i].Inc()
	if a.Err != nil {
		m.failures[i].Inc()
	} else if !a.Effective {
		m.Noops.Inc()
	}
}
