// Package rackmgr simulates the out-of-band actuation path Flex uses to
// enforce corrective actions: rack managers (RM) and baseboard management
// controllers (BMC) that can install a power cap (RAPL-style throttling to
// the rack's flex power), power racks off, and restore them (paper §IV-D,
// §VI "Firmware and network status").
//
// Actions are idempotent — Flex runs multiple controller primaries that
// may issue duplicate commands — and individually injectable failures
// (unreachable RM, stale firmware) model the production failure modes the
// §VI background verification service exists to catch.
package rackmgr

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"flex/internal/clock"
	"flex/internal/obs/recorder"
	"flex/internal/power"
)

// PowerState is a rack's actuation state.
type PowerState int

// Power states.
const (
	// On: running uncapped.
	On PowerState = iota
	// Throttled: running with a power cap installed.
	Throttled
	// Off: powered down.
	Off
)

// String implements fmt.Stringer.
func (s PowerState) String() string {
	switch s {
	case On:
		return "on"
	case Throttled:
		return "throttled"
	case Off:
		return "off"
	default:
		return fmt.Sprintf("PowerState(%d)", int(s))
	}
}

// Errors returned by actuation.
var (
	ErrUnknownRack   = errors.New("rackmgr: unknown rack")
	ErrUnreachable   = errors.New("rackmgr: rack manager unreachable")
	ErrStaleFirmware = errors.New("rackmgr: stale firmware, action refused")
)

// rack is the managed state of one rack.
type rack struct {
	state        PowerState
	cap          power.Watts // installed cap when Throttled
	reachable    bool
	firmwareOK   bool
	lastActionAt time.Time
}

// Manager is a simulated fleet of rack managers. All operations are safe
// for concurrent use by multiple controller primaries.
type Manager struct {
	clk clock.Clock
	// ActionLatency is charged (via the clock) per state-changing action;
	// the paper reports ≈2s p99.9 for a ~10MW room, dominated by the RM
	// round trip. Zero means no delay.
	ActionLatency time.Duration
	// Metrics, when non-nil, counts actuation attempts, failures, and
	// idempotent no-ops. Set it before actuation begins.
	Metrics *Metrics
	// Recorder, when non-nil, emits action-dispatch before and
	// action-ack / action-fail after every actuation, chained to the
	// issuing controller's planned action through Op. Set it before
	// actuation begins.
	Recorder *recorder.Recorder

	mu    sync.Mutex
	racks map[string]*rack
	log   []Action
}

// Op carries the flight-recorder provenance of one actuation: who issued
// it, which planned-action event caused it, and which overdraw episode it
// belongs to. The zero Op (unattributed) is valid — Throttle/Shutdown/
// Restore use it.
type Op struct {
	// Actor is the issuing component (controller name).
	Actor string
	// Cause is the event sequence of the action-planned (or other
	// originating) event.
	Cause uint64
	// Episode is the overdraw episode the action belongs to.
	Episode uint64
}

// Action is one executed (or refused) actuation, for audit and metrics.
type Action struct {
	Rack string
	Kind string // "throttle", "shutdown", "restore"
	Cap  power.Watts
	At   time.Time
	Err  error
	// Effective is false when the action was an idempotent no-op.
	Effective bool
}

// NewManager creates a manager over the given rack IDs; all racks start
// On, reachable, with current firmware.
func NewManager(clk clock.Clock, rackIDs []string) *Manager {
	m := &Manager{clk: clk, racks: make(map[string]*rack, len(rackIDs))}
	for _, id := range rackIDs {
		m.racks[id] = &rack{state: On, reachable: true, firmwareOK: true}
	}
	return m
}

// RackIDs returns the managed racks in sorted order.
func (m *Manager) RackIDs() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make([]string, 0, len(m.racks))
	for id := range m.racks {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// check validates the rack exists and the control path works.
func (m *Manager) check(id string) (*rack, error) {
	r, ok := m.racks[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownRack, id)
	}
	if !r.reachable {
		return nil, fmt.Errorf("%w: %s", ErrUnreachable, id)
	}
	if !r.firmwareOK {
		return nil, fmt.Errorf("%w: %s", ErrStaleFirmware, id)
	}
	return r, nil
}

// Throttle installs a power cap on the rack. Throttling an already
// throttled rack updates the cap; throttling an Off rack is refused.
// The call is idempotent with respect to repeated identical commands.
func (m *Manager) Throttle(id string, cap power.Watts) error {
	return m.ThrottleOp(id, cap, Op{})
}

// ThrottleOp is Throttle with flight-recorder provenance.
func (m *Manager) ThrottleOp(id string, cap power.Watts, op Op) error {
	dispatch := m.emitDispatch("throttle", id, cap, op)
	if m.ActionLatency > 0 {
		m.clk.Sleep(m.ActionLatency)
	}
	effective, err := m.throttleLocked(id, cap)
	m.emitOutcome("throttle", id, cap, op, dispatch, effective, err)
	return err
}

func (m *Manager) throttleLocked(id string, cap power.Watts) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, err := m.check(id)
	if err != nil {
		m.logAction(Action{Rack: id, Kind: "throttle", Cap: cap, Err: err})
		return false, err
	}
	if r.state == Off {
		err := fmt.Errorf("rackmgr: cannot throttle powered-off rack %s", id)
		m.logAction(Action{Rack: id, Kind: "throttle", Cap: cap, Err: err})
		return false, err
	}
	effective := r.state != Throttled || r.cap != cap
	r.state = Throttled
	r.cap = cap
	r.lastActionAt = m.clk.Now()
	m.logAction(Action{Rack: id, Kind: "throttle", Cap: cap, Effective: effective})
	return effective, nil
}

// Shutdown powers the rack off. Idempotent.
func (m *Manager) Shutdown(id string) error {
	return m.ShutdownOp(id, Op{})
}

// ShutdownOp is Shutdown with flight-recorder provenance.
func (m *Manager) ShutdownOp(id string, op Op) error {
	dispatch := m.emitDispatch("shutdown", id, 0, op)
	if m.ActionLatency > 0 {
		m.clk.Sleep(m.ActionLatency)
	}
	effective, err := m.shutdownLocked(id)
	m.emitOutcome("shutdown", id, 0, op, dispatch, effective, err)
	return err
}

func (m *Manager) shutdownLocked(id string) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, err := m.check(id)
	if err != nil {
		m.logAction(Action{Rack: id, Kind: "shutdown", Err: err})
		return false, err
	}
	effective := r.state != Off
	r.state = Off
	r.cap = 0
	r.lastActionAt = m.clk.Now()
	m.logAction(Action{Rack: id, Kind: "shutdown", Effective: effective})
	return effective, nil
}

// Restore returns the rack to uncapped operation (lifting a throttle or
// powering it back on). Idempotent.
func (m *Manager) Restore(id string) error {
	return m.RestoreOp(id, Op{})
}

// RestoreOp is Restore with flight-recorder provenance.
func (m *Manager) RestoreOp(id string, op Op) error {
	dispatch := m.emitDispatch("restore", id, 0, op)
	if m.ActionLatency > 0 {
		m.clk.Sleep(m.ActionLatency)
	}
	effective, err := m.restoreLocked(id)
	m.emitOutcome("restore", id, 0, op, dispatch, effective, err)
	return err
}

func (m *Manager) restoreLocked(id string) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, err := m.check(id)
	if err != nil {
		m.logAction(Action{Rack: id, Kind: "restore", Err: err})
		return false, err
	}
	effective := r.state != On
	r.state = On
	r.cap = 0
	r.lastActionAt = m.clk.Now()
	m.logAction(Action{Rack: id, Kind: "restore", Effective: effective})
	return effective, nil
}

// emitDispatch records that a command left for the rack manager; it runs
// before the RM round-trip latency is charged and before any manager lock
// is taken.
func (m *Manager) emitDispatch(kind, id string, cap power.Watts, op Op) uint64 {
	if m.Recorder == nil {
		return 0
	}
	return m.Recorder.Emit(recorder.Event{
		Type:    recorder.TypeActionDispatch,
		Time:    m.clk.Now(),
		Actor:   op.Actor,
		Subject: id,
		Value:   float64(cap),
		Detail:  kind,
		Cause:   op.Cause,
		Episode: op.Episode,
	})
}

// emitOutcome records the RM's answer — ack (Aux=1 when the state
// actually changed) or fail — chained to the dispatch event.
func (m *Manager) emitOutcome(kind, id string, cap power.Watts, op Op, dispatch uint64, effective bool, err error) {
	if m.Recorder == nil {
		return
	}
	e := recorder.Event{
		Time:    m.clk.Now(),
		Actor:   op.Actor,
		Subject: id,
		Value:   float64(cap),
		Detail:  kind,
		Cause:   dispatch,
		Episode: op.Episode,
	}
	if err != nil {
		e.Type = recorder.TypeActionFail
		e.Detail = kind + ": " + err.Error()
	} else {
		e.Type = recorder.TypeActionAck
		if effective {
			e.Aux = 1
		}
	}
	m.Recorder.Emit(e)
}

// State returns the rack's power state and cap.
func (m *Manager) State(id string) (PowerState, power.Watts, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.racks[id]
	if !ok {
		return On, 0, fmt.Errorf("%w: %s", ErrUnknownRack, id)
	}
	return r.state, r.cap, nil
}

// SetReachable injects or clears a management-network failure for a rack.
func (m *Manager) SetReachable(id string, reachable bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.racks[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownRack, id)
	}
	r.reachable = reachable
	return nil
}

// SetFirmwareOK injects or clears a firmware regression for a rack.
func (m *Manager) SetFirmwareOK(id string, ok bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, exists := m.racks[id]
	if !exists {
		return fmt.Errorf("%w: %s", ErrUnknownRack, id)
	}
	r.firmwareOK = ok
	return nil
}

// Health reports whether the rack's control path is currently usable.
func (m *Manager) Health(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, err := m.check(id)
	return err
}

func (m *Manager) logAction(a Action) {
	a.At = m.clk.Now()
	m.log = append(m.log, a)
	m.Metrics.recordAction(&a)
}

// Log returns a copy of the action audit log.
func (m *Manager) Log() []Action {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Action(nil), m.log...)
}
