package flex

import (
	"flex/internal/telemetry"
)

// Telemetry types (paper §IV-C, Figure 7).
type (
	// Sample is one published power measurement.
	Sample = telemetry.Sample
	// PowerSource supplies ground-truth power to simulated meters.
	PowerSource = telemetry.PowerSource
	// Meter is a pull-based power meter.
	Meter = telemetry.Meter
	// LogicalMeter is a median-consensus meter over redundant physical
	// meters.
	LogicalMeter = telemetry.LogicalMeter
	// Broker is an in-process pub/sub system. Publish is a single-sample
	// wrapper over PublishBatch, the batch-first primary ingest path.
	Broker = telemetry.Broker
	// BrokerServer exposes a Broker over TCP.
	BrokerServer = telemetry.BrokerServer
	// RemotePublisher publishes to a BrokerServer over TCP.
	RemotePublisher = telemetry.RemotePublisher
	// Poller reads logical meters and publishes samples, batching
	// consecutive same-topic targets into one PublishBatch.
	Poller = telemetry.Poller
	// LatestPower is the deduplicated freshest-power view controllers
	// read.
	LatestPower = telemetry.LatestPower
	// EWMAEstimator is the §IV-D time-series rack-power estimator.
	EWMAEstimator = telemetry.EWMAEstimator
	// Pipeline is a fully assembled redundant telemetry system.
	Pipeline = telemetry.Pipeline
	// PipelineConfig configures NewPipeline.
	PipelineConfig = telemetry.PipelineConfig
)

// Telemetry topics.
const (
	TopicUPS  = telemetry.TopicUPS
	TopicRack = telemetry.TopicRack
)

// NewPipeline assembles a room's redundant telemetry pipeline.
func NewPipeline(cfg PipelineConfig) *Pipeline { return telemetry.NewPipeline(cfg) }

// NewLatestPower returns an empty power view.
func NewLatestPower() *LatestPower { return telemetry.NewLatestPower() }

// NewEWMAEstimator creates a time-series power estimator.
func NewEWMAEstimator(alpha float64) *EWMAEstimator { return telemetry.NewEWMAEstimator(alpha) }
