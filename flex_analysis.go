package flex

import (
	"flex/internal/cooling"
	"flex/internal/cost"
	"flex/internal/feasibility"
)

// Analyses.
type (
	// FeasibilityParams configures the §III analysis.
	FeasibilityParams = feasibility.Params
	// FeasibilityAnalysis is its result.
	FeasibilityAnalysis = feasibility.Analysis
	// Savings is the §I construction-cost result.
	Savings = cost.Savings
	// DesignComparison contrasts redundancy designs.
	DesignComparison = cost.DesignComparison
)

// MaintenanceWindow is a low-utilization stretch suited to planned
// maintenance (§III).
type MaintenanceWindow = feasibility.MaintenanceWindow

// FindMaintenanceWindows scans an hourly utilization profile for windows
// where planned maintenance never engages Flex-Online.
func FindMaintenanceWindows(hourlyUtil []float64, minHours int, threshold float64) ([]MaintenanceWindow, error) {
	return feasibility.FindMaintenanceWindows(hourlyUtil, minHours, threshold)
}

// WeekProfile synthesizes the paper's weekday-peak/night-dip utilization
// profile for maintenance studies.
func WeekProfile(peak, nightDip float64) []float64 {
	return feasibility.WeekProfile(peak, nightDip)
}

// DefaultFeasibilityParams returns parameters calibrated to the paper's
// fleet statistics (1 h/yr unplanned, 40 h/yr planned, 65–80% peaks).
func DefaultFeasibilityParams() FeasibilityParams { return feasibility.DefaultParams() }

// AnalyzeFeasibility runs the §III joint-probability analysis.
func AnalyzeFeasibility(p FeasibilityParams) (FeasibilityAnalysis, error) {
	return feasibility.Analyze(p)
}

// ComputeSavings evaluates the §I zero-reserved-power economics.
func ComputeSavings(design Redundancy, sitePower Watts, dollarsPerWatt float64) (Savings, error) {
	return cost.Compute(design, sitePower, dollarsPerWatt)
}

// CompareDesigns evaluates reserved power and Flex gains across designs.
func CompareDesigns() []DesignComparison { return cost.CompareDesigns() }

// Cooling-redundancy types (§VI "Implications on cooling infrastructure").
type (
	// CoolingDomain is a set of racks sharing CRAH units.
	CoolingDomain = cooling.Domain
	// CoolingRack is a rack's airflow demand and mitigation options.
	CoolingRack = cooling.Rack
	// ThermalParams model temperature rise under an airflow deficit.
	ThermalParams = cooling.ThermalParams
	// CoolingPlan is a mitigation plan for a cooling-unit failure.
	CoolingPlan = cooling.PlanResult
)

// DefaultThermalParams returns a representative air-cooled room model.
func DefaultThermalParams() ThermalParams { return cooling.DefaultThermalParams() }

// PlanCoolingMitigation plans the response to losing cooling units:
// migrate software-redundant racks first, then throttle, then shut down —
// within the minutes-long thermal window (vs the 10s power budget).
func PlanCoolingMitigation(domains []CoolingDomain, racks []CoolingRack, failed cooling.DomainID, failedUnits int, params ThermalParams) (CoolingPlan, error) {
	return cooling.PlanMitigation(domains, racks, failed, failedUnits, params)
}

// ChargeModel prices the §VI financial incentives for flexible workloads.
type ChargeModel = cost.ChargeModel

// DefaultChargeModel returns a conservative §VI pricing parameterization.
func DefaultChargeModel() ChargeModel { return cost.DefaultChargeModel() }

// MonteCarloParams / MonteCarloResult drive the stochastic §III check.
type (
	MonteCarloParams = feasibility.MonteCarloParams
	MonteCarloResult = feasibility.MonteCarloResult
)

// DefaultMonteCarloParams mirrors the paper's fleet statistics.
func DefaultMonteCarloParams() MonteCarloParams { return feasibility.DefaultMonteCarloParams() }

// SimulateYears runs the Monte Carlo counterpart of AnalyzeFeasibility.
func SimulateYears(p MonteCarloParams) (MonteCarloResult, error) {
	return feasibility.SimulateYears(p)
}
