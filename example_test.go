package flex_test

import (
	"context"
	"fmt"
	"time"

	"flex"
)

// ExampleRedundancy shows the reserved-power arithmetic of the paper's
// 4N/3 distributed-redundant design.
func ExampleRedundancy() {
	design := flex.Redundancy{X: 4, Y: 3}
	fmt.Printf("%v reserves %.0f%% of provisioned power\n", design, design.ReservedFraction()*100)
	fmt.Printf("zero-reserve operation deploys %.0f%% more servers\n", design.ExtraServersFraction()*100)
	fmt.Printf("worst failover load on a survivor: %.0f%% of rating\n", design.WorstCaseFailoverFraction()*100)
	// Output:
	// 4N/3 reserves 25% of provisioned power
	// zero-reserve operation deploys 33% more servers
	// worst failover load on a survivor: 133% of rating
}

// ExampleFlexOffline places a demand trace into the paper's 9.6MW room
// and verifies the Eq. 4 safety guarantee.
func ExampleFlexOffline() {
	room := flex.PaperRoom()
	trace, _ := flex.GenerateTrace(flex.DefaultTraceConfig(room.Topo.ProvisionedPower()), 42)
	policy := flex.FlexOfflineShort()
	policy.MaxNodes = 150 // keep the example fast
	pl, _ := policy.Place(context.Background(), room, trace)
	fmt.Println("placement safe:", pl.Validate() == nil)
	fmt.Println("stranded below 10%:", pl.StrandedFraction() < 0.10)
	// Output:
	// placement safe: true
	// stranded below 10%: true
}

// ExamplePlanActions runs Algorithm 1 for a failover snapshot.
func ExamplePlanActionsContext() {
	room := flex.PaperRoom()
	trace, _ := flex.GenerateTrace(flex.DefaultTraceConfig(room.Topo.ProvisionedPower()), 42)
	policy := flex.FlexOfflineShort()
	policy.MaxNodes = 150
	pl, _ := policy.Place(context.Background(), room, trace)

	ups := make([]flex.Watts, 4)
	for u := range ups {
		ups[u] = flex.Watts(0.85 * 4.0 / 3.0 * 2.4e6) // survivors at 113%
	}
	ups[0] = 0 // failed supply
	actions, insufficient, _ := flex.PlanActionsContext(context.Background(), flex.PlanInput{
		Topo:     room.Topo,
		Racks:    flex.ManagedRacks(flex.ExpandRacks(pl)),
		UPSPower: ups,
		Inactive: map[flex.UPSID]bool{0: true},
		Scenario: flex.ScenarioRealistic1(),
	})
	fmt.Println("sufficient:", !insufficient)
	fmt.Println("actions chosen:", len(actions) > 0)
	// Output:
	// sufficient: true
	// actions chosen: true
}

// ExampleNewImpactFunction defines a custom workload impact function.
func ExampleNewImpactFunction() {
	// A stateful service: 10% growth buffer is free to shut down, the
	// working set degrades linearly, the last 10% is critical.
	f, _ := flex.NewImpactFunction("my-service", []flex.ImpactPoint{
		{Fraction: 0, Impact: 0},
		{Fraction: 0.1, Impact: 0},
		{Fraction: 0.9, Impact: 0.6},
		{Fraction: 0.95, Impact: 1},
	})
	fmt.Printf("impact at 5%%: %.2f\n", f.At(0.05))
	fmt.Printf("impact at 50%%: %.2f\n", f.At(0.5))
	fmt.Printf("critical at 95%%: %v\n", f.Critical(0.95))
	// Output:
	// impact at 5%: 0.00
	// impact at 50%: 0.30
	// critical at 95%: true
}

// ExampleComputeSavings reproduces the paper's headline economics.
func ExampleComputeSavings() {
	s, _ := flex.ComputeSavings(flex.Redundancy{X: 4, Y: 3}, 128*flex.MW, 5)
	fmt.Printf("a 128MW site at $5/W saves ≈$%.0fM\n", s.Dollars/1e6)
	// Output:
	// a 128MW site at $5/W saves ≈$213M
}

// ExampleFindMaintenanceWindows schedules planned maintenance into the
// paper's night/weekend utilization dips.
func ExampleFindMaintenanceWindows() {
	profile := flex.WeekProfile(0.80, 0.17) // weekday peak 80%, dips −17%
	windows, _ := flex.FindMaintenanceWindows(profile, 6, 0.75)
	fmt.Println("windows found:", len(windows) > 0)
	fmt.Println("first window long enough for a UPS service:", windows[0].Hours >= 6)
	// Output:
	// windows found: true
	// first window long enough for a UPS service: true
}

// ExampleEndOfLifeTripCurve shows the overload tolerance Flex designs
// against.
func ExampleEndOfLifeTripCurve() {
	curve := flex.EndOfLifeTripCurve()
	fmt.Println("tolerance at 133% load:", curve.Tolerance(4.0/3.0))
	fmt.Println("within the Flex budget:", curve.Tolerance(4.0/3.0) >= 10*time.Second)
	// Output:
	// tolerance at 133% load: 10s
	// within the Flex budget: true
}
