package flex

import (
	"time"

	"flex/internal/placement"
	"flex/internal/placement/online"
)

// Placement types and policies.
type (
	// Room couples a topology with rack space (and optional cooling).
	Room = placement.Room
	// Placement is a policy's result with its safety/metric methods.
	Placement = placement.Placement
	// Policy places a demand trace into a room.
	Policy = placement.Policy
	// FlexOffline is the paper's ILP placement policy.
	FlexOffline = placement.FlexOffline
	// RandomPolicy places on a uniformly random feasible PDU-pair.
	RandomPolicy = placement.Random
	// RoundRobinPolicy cycles PDU-pairs with one shared pointer.
	RoundRobinPolicy = placement.RoundRobin
	// BalancedRoundRobinPolicy balances each category across PDU-pairs.
	BalancedRoundRobinPolicy = placement.BalancedRoundRobin
	// FirstFitPolicy concentrates load (the paper's counter-example).
	FirstFitPolicy = placement.FirstFit
	// Site routes one demand stream across several rooms.
	Site = placement.Site
	// SitePlacement is a Site placement outcome.
	SitePlacement = placement.SitePlacement
)

// NewUniformSite builds a site of n identical paper rooms.
func NewUniformSite(name string, n int) (*Site, error) {
	return placement.NewUniformSite(name, n)
}

// RoomOption customizes NewPlacementRoom.
type RoomOption func(*roomOptions)

type roomOptions struct {
	slotsPerPair       int
	reserveUtilization float64
	partialReserve     bool
}

// WithSlotsPerPair sets the uniform rack-slot count per PDU-pair. The
// default is the paper's 60 slots (18 pairs × 60 = 1080 racks for the
// §V-A room).
func WithSlotsPerPair(n int) RoomOption {
	return func(o *roomOptions) { o.slotsPerPair = n }
}

// WithReserveUtilization allocates only the given fraction of the
// reserved power (§VI: Microsoft's first production deployments use 42%,
// where throttling alone covers every failover). The default allocates
// the full reserve — the paper's headline zero-reserved-power operating
// point.
func WithReserveUtilization(fraction float64) RoomOption {
	return func(o *roomOptions) {
		o.reserveUtilization = fraction
		o.partialReserve = true
	}
}

// NewPlacementRoom builds a placement room from a topology plus options,
// defaulting to the paper's 60 slots per PDU-pair with the full reserve
// allocated.
func NewPlacementRoom(topo *Topology, opts ...RoomOption) (*Room, error) {
	o := roomOptions{slotsPerPair: 60}
	for _, opt := range opts {
		opt(&o)
	}
	if o.partialReserve {
		return placement.PartialReserveRoom(topo, o.slotsPerPair, o.reserveUtilization)
	}
	return placement.NewRoom(topo, o.slotsPerPair)
}

// NewRoom builds a placement room with uniform slots per PDU-pair.
//
// Deprecated: use NewPlacementRoom(topo, WithSlotsPerPair(n)).
func NewRoom(topo *Topology, slotsPerPair int) (*Room, error) {
	return placement.NewRoom(topo, slotsPerPair)
}

// PartialReserveRoom builds a room allocating only a fraction of the
// reserved power.
//
// Deprecated: use NewPlacementRoom(topo, WithSlotsPerPair(n),
// WithReserveUtilization(fraction)).
func PartialReserveRoom(topo *Topology, slotsPerPair int, reserveUtilization float64) (*Room, error) {
	return placement.PartialReserveRoom(topo, slotsPerPair, reserveUtilization)
}

// PaperRoom is the paper's §V-A evaluation room (9.6MW, 4N/3, 18 pairs).
func PaperRoom() *Room { return placement.PaperRoom() }

// EmulationRoom is the paper's §V-C emulation room (4.8MW, 360 racks).
func EmulationRoom() *Room { return placement.EmulationRoom() }

// FlexOfflineShort/Long/Oracle are the paper's three batching horizons.
func FlexOfflineShort() FlexOffline  { return placement.FlexOfflineShort() }
func FlexOfflineLong() FlexOffline   { return placement.FlexOfflineLong() }
func FlexOfflineOracle() FlexOffline { return placement.FlexOfflineOracle() }

// Online placement (ROADMAP item 2): millisecond admission with warm ILP
// state. See internal/placement/online.
type (
	// OnlinePlacement is the online admission policy — one deployment at a
	// time on an allocation-free hot path, with sampled-scenario scoring
	// and a warm background exact re-solve.
	OnlinePlacement = online.Online
	// OnlinePlacementConfig parameterizes the online admitter.
	OnlinePlacementConfig = online.Config
	// OnlineAdmitter is the incremental admission engine itself, for
	// callers that drive Admit/Remove directly instead of through a
	// Policy trace.
	OnlineAdmitter = online.Admitter
	// OnlinePlacementMetrics is the admitter's observability surface.
	OnlinePlacementMetrics = online.Metrics
	// OnlineSnapshot summarizes an admitter's committed state.
	OnlineSnapshot = online.Snapshot
)

// OnlinePlacementOption customizes NewOnlinePlacement/NewOnlineAdmitter.
type OnlinePlacementOption func(*OnlinePlacementConfig)

// WithPlacementSeed seeds the sampled future-arrival stream; with
// WithSyncResolve the whole placement is reproducible for a fixed seed.
func WithPlacementSeed(seed int64) OnlinePlacementOption {
	return func(c *OnlinePlacementConfig) { c.Seed = seed }
}

// WithScenarioSampling sets how many sampled future-arrival suffixes are
// scored per contested admission and how many arrivals deep each greedy
// completion looks. The defaults are 4 scenarios × 16 arrivals; a
// negative scenario count disables sampling (the solver-target deviation
// term still steers).
func WithScenarioSampling(scenarios, depth int) OnlinePlacementOption {
	return func(c *OnlinePlacementConfig) {
		c.Scenarios = scenarios
		c.ScenarioDepth = depth
	}
}

// WithWarmResolve tunes the background exact re-solve: trigger every
// `every` admissions, bounded by `nodes` branch-and-bound nodes and
// `budget` wall time per solve. A negative `every` disables the warm
// solver.
func WithWarmResolve(every, nodes int, budget time.Duration) OnlinePlacementOption {
	return func(c *OnlinePlacementConfig) {
		c.ResolveEvery = every
		c.ResolveNodes = nodes
		c.ResolveBudget = budget
	}
}

// WithSyncResolve runs re-solves inline on the admission loop instead of
// in a background goroutine — deterministic placements, for tests and
// smokes.
func WithSyncResolve() OnlinePlacementOption {
	return func(c *OnlinePlacementConfig) { c.SyncResolve = true }
}

// WithOnlinePlacementConfig applies an arbitrary edit to the assembled
// OnlinePlacementConfig — the escape hatch for knobs without a dedicated
// option (metrics registry, scenario trace, solver workers).
func WithOnlinePlacementConfig(edit func(*OnlinePlacementConfig)) OnlinePlacementOption {
	return OnlinePlacementOption(edit)
}

// NewOnlinePlacement assembles the online admission policy. Without
// options it scores 4 sampled scenarios per contested admission and
// re-solves in the background every 16 admissions.
func NewOnlinePlacement(opts ...OnlinePlacementOption) OnlinePlacement {
	var cfg OnlinePlacementConfig
	for _, o := range opts {
		o(&cfg)
	}
	return OnlinePlacement{Config: cfg}
}

// NewOnlineAdmitter builds the incremental admission engine for a room,
// for callers that drive Admit/Remove directly (production admission
// endpoints, emulations) rather than placing a fixed trace.
func NewOnlineAdmitter(room *Room, opts ...OnlinePlacementOption) (*OnlineAdmitter, error) {
	var cfg OnlinePlacementConfig
	for _, o := range opts {
		o(&cfg)
	}
	return online.NewAdmitter(room, cfg)
}
