package flex

import (
	"flex/internal/impact"
)

// Impact functions.
type (
	// ImpactFunction maps affected-rack fraction to perceived impact.
	ImpactFunction = impact.Function
	// ImpactPoint is a vertex of a piecewise-linear impact function.
	ImpactPoint = impact.Point
	// Scenario assigns impact functions to workloads/categories.
	Scenario = impact.Scenario
)

// NewImpactFunction builds a piecewise-linear impact function.
func NewImpactFunction(name string, points []ImpactPoint) (ImpactFunction, error) {
	return impact.New(name, points)
}

// The Figure 11 scenario library and the paper's default behaviour.
func ScenarioExtreme1() Scenario   { return impact.Extreme1() }
func ScenarioExtreme2() Scenario   { return impact.Extreme2() }
func ScenarioRealistic1() Scenario { return impact.Realistic1() }
func ScenarioRealistic2() Scenario { return impact.Realistic2() }
func ScenarioDefault() Scenario    { return impact.Default() }

// Figure11Scenarios returns all four evaluation scenarios.
func Figure11Scenarios() []Scenario { return impact.Figure11Scenarios() }

// Figure8A/B/C are the paper's three production impact-function examples:
// the cap-able VM service, a software-redundant stateless service, and a
// software-redundant stateful service with growth buffer and critical
// management racks.
func Figure8A() ImpactFunction { return impact.Figure8A() }
func Figure8B() ImpactFunction { return impact.Figure8B() }
func Figure8C() ImpactFunction { return impact.Figure8C() }
