// Command flexlint runs Flex's custom correctness analyzers over the
// repository: clockcheck (injected-clock discipline), floateq (no exact
// float comparison in the numeric packages), unitcheck (no mixed power
// units), locksend (no blocking operations under a mutex), eventcheck
// (no flight-recorder emission under a mutex, interprocedural),
// shedcheck (no discarded errors on the power-shedding path), allocfree
// (//flex:hotpath functions are provably allocation-free), ctxflow (the
// caller's context is never dropped on a budgeted path), and lockorder
// (no mutex acquisition-order cycles across packages).
//
// The suite is interprocedural: flexlint analyzes the whole module in
// one pass, building a module-wide call graph and letting analyzers
// exchange per-function facts across package boundaries.
//
// Usage:
//
//	go run ./cmd/flexlint ./...
//	go run ./cmd/flexlint -list
//	go run ./cmd/flexlint -json ./...
//	go run ./cmd/flexlint ./internal/telemetry ./internal/controller
//
// flexlint exits 1 when any analyzer reports a finding and 0 on a clean
// tree. With -json the findings are printed as a JSON array (one object
// per finding with file, line, col, message, analyzer) for CI
// annotation. It analyzes non-test files only: the invariants it
// enforces are deliberately relaxed in _test.go files.
//
// A finding can be suppressed — with a documented reason — by a
// directive on, or directly above, the offending line:
//
//	//flexlint:ignore <analyzer> <reason>
//
// The reason is mandatory; a bare ignore is itself reported.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"flex/internal/analysis"
	"flex/internal/analysis/allocfree"
	"flex/internal/analysis/clockcheck"
	"flex/internal/analysis/ctxflow"
	"flex/internal/analysis/eventcheck"
	"flex/internal/analysis/floateq"
	"flex/internal/analysis/lockorder"
	"flex/internal/analysis/locksend"
	"flex/internal/analysis/shedcheck"
	"flex/internal/analysis/unitcheck"
)

// analyzers is the flexlint suite.
var analyzers = []*analysis.Analyzer{
	allocfree.Analyzer,
	clockcheck.Analyzer,
	ctxflow.Analyzer,
	eventcheck.Analyzer,
	floateq.Analyzer,
	lockorder.Analyzer,
	locksend.Analyzer,
	shedcheck.Analyzer,
	unitcheck.Analyzer,
}

// floateqScope confines floateq to the numeric packages, where epsilon
// comparison is mandatory for simplex / branch-and-bound / load-flow
// correctness. Exact comparison elsewhere (e.g. a tie-break on two copies
// of the same measurement) is left to review. Paths are relative to the
// module root.
var floateqScope = []string{
	"internal/lp",
	"internal/milp",
	"internal/power",
	"internal/feasibility",
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := flag.Bool("json", false, "print findings as a JSON array")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: flexlint [-list] [-json] [-only name,...] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the Flex correctness analyzers. Packages default to ./...\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		return
	}

	suite := analyzers
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		suite = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "flexlint: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			suite = append(suite, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	n, err := lint(suite, patterns, *jsonOut)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flexlint: %v\n", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "flexlint: %d finding(s)\n", n)
		os.Exit(1)
	}
}

// jsonFinding is the -json wire format for one finding.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
	Analyzer string `json:"analyzer"`
}

// lint loads the patterns, runs the suite, prints findings, and returns
// the finding count.
func lint(suite []*analysis.Analyzer, patterns []string, jsonOut bool) (int, error) {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		return 0, err
	}
	pkgs, err := loader.LoadPatterns(patterns...)
	if err != nil {
		return 0, err
	}
	modulePath := loader.ModulePath()
	scope := func(a *analysis.Analyzer, pkgPath string) bool {
		if a.Name != floateq.Analyzer.Name {
			return true
		}
		for _, p := range floateqScope {
			full := modulePath + "/" + p
			if pkgPath == full || strings.HasPrefix(pkgPath, full+"/") {
				return true
			}
		}
		return false
	}
	findings, err := analysis.Run(loader.Fset, pkgs, suite, scope)
	if err != nil {
		return 0, err
	}
	cwd, _ := os.Getwd()
	if jsonOut {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			pos := f.Position(loader.Fset)
			name := pos.Filename
			if cwd != "" {
				if rel, err := filepath.Rel(cwd, name); err == nil && !filepath.IsAbs(rel) {
					name = rel
				}
			}
			out = append(out, jsonFinding{File: name, Line: pos.Line, Col: pos.Column, Message: f.Message, Analyzer: f.Category})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return 0, err
		}
		return len(findings), nil
	}
	for _, f := range findings {
		fmt.Println(analysis.Format(loader.Fset, cwd, f))
	}
	return len(findings), nil
}
