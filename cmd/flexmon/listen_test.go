package main

import (
	"bufio"
	"bytes"
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"flex/internal/obs"
)

// TestListenServesValidPrometheus drives `flexmon -quick -listen 127.0.0.1:0`
// and scrapes /metrics while the run is live. The io.Pipe keeps run()
// blocked on its own output after the listen line, so the server is
// guaranteed to still be up when the scrape happens.
func TestListenServesValidPrometheus(t *testing.T) {
	pr, pw := io.Pipe()
	errCh := make(chan error, 1)
	go func() {
		err := run(context.Background(), []string{"-quick", "-metrics", "-listen", "127.0.0.1:0"}, pw)
		_ = pw.CloseWithError(err)
		errCh <- err
	}()

	br := bufio.NewReader(pr)
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("reading listen line: %v", err)
	}
	const prefix = "obs: listening on http://"
	if !strings.HasPrefix(line, prefix) {
		t.Fatalf("first line %q, want prefix %q", line, prefix)
	}
	addr := strings.Fields(strings.TrimPrefix(strings.TrimSpace(line), prefix))[0]

	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatalf("reading /metrics body: %v", err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want Prometheus text 0.0.4", ct)
	}
	if err := obs.ValidatePrometheus(bytes.NewReader(body)); err != nil {
		t.Errorf("/metrics is not valid Prometheus text: %v\n%s", err, body)
	}
	if !strings.Contains(string(body), "flex_up 1") {
		t.Errorf("/metrics missing flex_up gauge:\n%s", body)
	}

	// Drain the rest of the run and make sure it succeeded end to end.
	rest, err := io.ReadAll(br)
	if err != nil {
		t.Fatalf("draining output: %v", err)
	}
	if err := <-errCh; err != nil {
		t.Fatalf("run: %v", err)
	}
	out := string(rest)
	for _, want := range []string{
		"cascading outage:                    false",
		"metrics summary:",
		"flex_controller_shed_latency_seconds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}
