package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"flex/internal/clock"
	"flex/internal/obs/slo"
)

// runWatch polls a running obs server's /healthz and /slo endpoints and
// prints one safety-status line per interval. New flight-recorder events
// are fetched incrementally via /events?since=<seq>, so each poll
// transfers only the tail that arrived since the previous one.
func runWatch(out io.Writer, baseURL string, every time.Duration, n int) error {
	base := strings.TrimRight(baseURL, "/")
	client := &http.Client{Timeout: 10 * time.Second}
	var clk clock.Clock = clock.Real{}
	var lastSeq uint64
	for i := 0; n <= 0 || i < n; i++ {
		if i > 0 {
			clk.Sleep(every)
		}
		line, seq, err := watchOnce(client, base, lastSeq)
		if err != nil {
			return err
		}
		lastSeq = seq
		if _, err := fmt.Fprintln(out, line); err != nil {
			return err
		}
	}
	return nil
}

// watchOnce performs one poll round and formats the status line.
func watchOnce(client *http.Client, base string, sinceSeq uint64) (line string, lastSeq uint64, err error) {
	var health slo.Health
	if err := getJSON(client, base+"/healthz", &health); err != nil {
		return "", sinceSeq, fmt.Errorf("healthz: %w", err)
	}
	var status slo.Status
	if err := getJSON(client, base+"/slo", &status); err != nil {
		return "", sinceSeq, fmt.Errorf("slo: %w", err)
	}

	// Incremental event tail. A server without a recorder serves [] —
	// the watch line just reports 0 new events.
	var events []struct {
		Seq  uint64 `json:"seq"`
		Type string `json:"type"`
	}
	url := base + "/events"
	if sinceSeq > 0 {
		url += fmt.Sprintf("?since=%d", sinceSeq)
	}
	if err := getJSON(client, url, &events); err != nil {
		return "", sinceSeq, fmt.Errorf("events: %w", err)
	}
	lastSeq = sinceSeq
	counts := map[string]int{}
	for _, e := range events {
		if e.Seq > lastSeq {
			lastSeq = e.Seq
		}
		counts[e.Type]++
	}

	breached := 0
	for _, o := range status.Objectives {
		if o.Breached {
			breached++
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s", health.State)
	if status.EpisodeOpen {
		fmt.Fprintf(&b, " episode=%d burn=%.0f%%", status.EpisodeID, status.BudgetBurn*100)
	}
	fmt.Fprintf(&b, " objectives=%d/%d ok probe=%d/%d clean",
		len(status.Objectives)-breached, len(status.Objectives),
		status.Probe.CleanRounds, status.Probe.Rounds)
	fmt.Fprintf(&b, " events+%d", len(events))
	for _, t := range []string{"slo-breach", "slo-recover", "probe-fail"} {
		if c := counts[t]; c > 0 {
			fmt.Fprintf(&b, " %s×%d", t, c)
		}
	}
	// Per-stage critical-path p99s against their 10s-budget carves (only
	// when the server's auditor is bound to stage histograms). "!" marks
	// a stage over its carve.
	if len(status.Stages) > 0 {
		parts := make([]string, 0, len(status.Stages))
		for _, st := range status.Stages {
			s := fmt.Sprintf("%s:%.0fms", st.Name, st.P99*1000)
			if st.OverBudget {
				s += "!"
			}
			parts = append(parts, s)
		}
		fmt.Fprintf(&b, " stages=%s", strings.Join(parts, ","))
	}
	if health.State != slo.StateReady && len(health.Reasons) > 0 {
		fmt.Fprintf(&b, "  [%s]", health.Reasons[0])
	}
	return b.String(), lastSeq, nil
}

func getJSON(client *http.Client, url string, dst interface{}) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	// /healthz deliberately serves 503 with a JSON body when unsafe;
	// decode any JSON response regardless of status.
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	if err := json.Unmarshal(body, dst); err != nil {
		return fmt.Errorf("%s: status %d: %w", url, resp.StatusCode, err)
	}
	return nil
}
