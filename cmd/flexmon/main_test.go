package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestRunQuickEmulation(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-quick", "-csv"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"t_seconds,stage,ups1_watts",
		"UPS power timeline",
		"software-redundant racks shut down",
		"cascading outage:                    false",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunScenarios(t *testing.T) {
	for _, sc := range []string{"Extreme-1", "Extreme-2", "Realistic-2"} {
		var out bytes.Buffer
		if err := run(context.Background(), []string{"-quick", "-scenario", sc}, &out); err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		if !strings.Contains(out.String(), sc) {
			t.Errorf("%s missing from output", sc)
		}
	}
}

func TestRunUnknownScenario(t *testing.T) {
	if err := run(context.Background(), []string{"-scenario", "nope"}, &bytes.Buffer{}); err == nil {
		t.Fatal("expected error")
	}
}
