// Command flexmon runs the end-to-end Flex-Online emulation (paper §V-C,
// Figure 13): a 4.8MW zero-reserved-power room of 360 emulated racks at
// 80% utilization, a UPS failure after 12 minutes, corrective actions by
// the multi-primary controllers, and recovery. It prints the UPS and
// per-category rack power timeline as CSV plus a summary.
//
// Usage:
//
//	flexmon [-util F] [-scenario NAME] [-csv] [-quick] [-metrics] [-listen ADDR] [-record FILE]
//	flexmon -watch [-url URL] [-every D] [-n N]
//
// With -listen the run exposes a live introspection surface (/metrics,
// /debug/vars, /debug/pprof, /traces, /events) plus the continuous
// safety auditor's endpoints (/query, /slo, /healthz) for the duration
// of the emulation. With -record the whole run is captured as a
// replayable flight-recorder event log (see flexreplay). -watch flips
// flexmon into a client: it polls a running server's /healthz, /slo and
// /events (incrementally, via since=<seq>) and prints a one-line safety
// status per interval.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"flex"
	"flex/internal/obs"
	"flex/internal/obs/slo"
	"flex/internal/obs/tsdb"
	"flex/internal/report"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "flexmon:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("flexmon", flag.ContinueOnError)
	util := fs.Float64("util", 0.80, "steady-state utilization of provisioned power")
	scenario := fs.String("scenario", "Realistic-1", "impact scenario (Extreme-1|Extreme-2|Realistic-1|Realistic-2)")
	csv := fs.Bool("csv", false, "print the full timeline as CSV")
	quick := fs.Bool("quick", false, "compressed timeline (fail @4min, 10min total)")
	seed := fs.Int64("seed", 1, "random seed")
	metrics := fs.Bool("metrics", false, "print a metrics summary CSV after the run")
	listen := fs.String("listen", "", "serve /metrics, /debug/vars, /debug/pprof, /traces, /events, /query, /slo, /healthz on this address during the run (e.g. :8080)")
	record := fs.String("record", "", "write the flight-recorder event log to this file (JSONL, replayable with flexreplay)")
	watch := fs.Bool("watch", false, "watch mode: poll a running obs server (-url) and print a one-line safety status per interval instead of running an emulation")
	watchURL := fs.String("url", "http://127.0.0.1:8080", "obs server base URL for -watch")
	watchEvery := fs.Duration("every", 2*time.Second, "poll interval for -watch")
	watchN := fs.Int("n", 0, "number of -watch polls (0 = until interrupted)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *watch {
		return runWatch(out, *watchURL, *watchEvery, *watchN)
	}

	var sc flex.Scenario
	switch *scenario {
	case "Extreme-1":
		sc = flex.ScenarioExtreme1()
	case "Extreme-2":
		sc = flex.ScenarioExtreme2()
	case "Realistic-1":
		sc = flex.ScenarioRealistic1()
	case "Realistic-2":
		sc = flex.ScenarioRealistic2()
	default:
		return fmt.Errorf("unknown scenario %q", *scenario)
	}

	reg := obs.NewRegistry()
	tracer := obs.NewTracer(0)
	var rec *flex.FlightRecorder
	if *record != "" {
		f, err := os.Create(*record)
		if err != nil {
			return err
		}
		// A full 24-minute run at 500ms ticks emits a few hundred thousand
		// events; every one reaches the sink, the ring just bounds /events.
		rec = flex.NewFlightRecorder(1 << 18)
		rec.AttachSink(flex.NewFlightSink(f))
		defer func() {
			if err := rec.DetachSink(); err != nil {
				fmt.Fprintln(os.Stderr, "flexmon: flushing event log:", err)
			}
			fmt.Fprintf(out, "recorded %d events to %s\n", rec.Emitted(), *record)
		}()
	}
	// A metric that exists before the emulation starts, so /metrics is
	// never empty for an early scraper.
	reg.Gauge("flex_up", "1 while the process is running").Set(1)
	var aud *slo.Auditor
	if *listen != "" {
		// The live surface includes the safety auditor: /query over the
		// tsdb the sampler and auditor fill, /slo burn rates, /healthz —
		// the endpoints `flexmon -watch` polls.
		store := tsdb.NewStore(tsdb.Options{})
		aud = slo.NewAuditor(slo.Config{
			Store:    store,
			Recorder: rec,
			// Telemetry pumps run at 1.5s (UPS) / 2s (rack) cadence;
			// freshness thresholds must sit above them.
			UPSFreshness:  3 * time.Second,
			RackFreshness: 4 * time.Second,
		})
		addr, stop, err := obs.StartServer(*listen, obs.ServerConfig{
			Registry: reg,
			Tracer:   tracer,
			Events:   rec,
			Query:    store.Handler(),
			SLO:      aud.SLOHandler(),
			Health:   aud.HealthHandler(),
		})
		if err != nil {
			return err
		}
		defer stop()
		fmt.Fprintf(out, "obs: listening on http://%s (/metrics /debug/vars /debug/pprof /traces /events /query /slo /healthz)\n", addr)
	}

	cfg := flex.EmulationConfig{Utilization: *util, Scenario: &sc, Seed: *seed, Obs: reg, Tracer: tracer, Recorder: rec, Safety: aud}
	if *quick {
		cfg.Tick = time.Second
		cfg.FailAt = 4 * time.Minute
		cfg.RecoverAt = 7 * time.Minute
		cfg.Duration = 10 * time.Minute
	}
	res, err := flex.RunEmulationContext(ctx, cfg)
	if err != nil {
		return err
	}

	if *csv {
		if err := report.WriteFigure13(out, res); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}

	renderTimeline(out, res)
	fmt.Fprintf(out, "Flex-Online emulation (%s, %.0f%% utilization) — paper §V-C reference values in parentheses:\n",
		sc.Name, *util*100)
	fmt.Fprintf(out, "  software-redundant racks shut down:  %.0f%%  (64%%)\n", res.SRShutdownFrac*100)
	fmt.Fprintf(out, "  cap-able racks throttled:            %.0f%%  (51%%)\n", res.CapThrottledFrac*100)
	fmt.Fprintf(out, "  non-cap-able racks touched:          %d    (0)\n", res.NonCapTouched)
	fmt.Fprintf(out, "  detection→first action latency:      %v\n", res.DetectionLatency)
	fmt.Fprintf(out, "  failure→power-below-capacity:        %v  (budget %v)\n", res.ShaveLatency, flex.FlexLatencyBudget)
	fmt.Fprintf(out, "  cascading outage:                    %v    (must be false)\n", res.Outage)
	fmt.Fprintf(out, "  TPC-E-like p95 latency increase:     %+.1f%% (+4.7%%)\n", res.P95IncreasePct)
	fmt.Fprintf(out, "  worst-case latency increase:         %+.1f%% (+14%%)\n", res.WorstIncreasePct)
	fmt.Fprintf(out, "  all racks restored after recovery:   %v\n", res.RestoredAll)
	if res.Insufficient {
		fmt.Fprintln(out, "  WARNING: Algorithm 1 ran out of shaveable racks")
	}
	if *metrics {
		fmt.Fprintln(out)
		fmt.Fprintln(out, "metrics summary:")
		if err := report.WriteMetricsSummary(out, reg); err != nil {
			return err
		}
	}
	return nil
}

// renderTimeline draws the Figure 13(a) UPS power series as an ASCII
// chart: one row per UPS, one column per time bucket, glyphs by load
// relative to the 1.2MW rating.
func renderTimeline(out io.Writer, res *flex.EmulationResult) {
	const cols = 72
	if len(res.Series) < cols {
		return
	}
	step := len(res.Series) / cols
	glyph := func(frac float64) byte {
		switch {
		case frac <= 0.01:
			return '_' // failed / unloaded
		case frac < 0.5:
			return '.'
		case frac < 0.85:
			return 'o'
		case frac <= 1.0:
			return 'O'
		default:
			return '#' // overdraw
		}
	}
	nUPS := len(res.Series[0].UPSPower)
	fmt.Fprintln(out, "UPS power timeline (_ <1%  . <50%  o <85%  O <=100%  # overdraw; rating 1.2MW):")
	for u := 0; u < nUPS; u++ {
		row := make([]byte, 0, cols)
		for c := 0; c < cols; c++ {
			p := res.Series[c*step]
			row = append(row, glyph(float64(p.UPSPower[u])/1.2e6))
		}
		fmt.Fprintf(out, "  UPS%d %s\n", u+1, row)
	}
	// Stage ruler.
	stageRow := make([]byte, 0, cols)
	for c := 0; c < cols; c++ {
		switch res.Series[c*step].Stage {
		case "setup":
			stageRow = append(stageRow, 's')
		case "normal":
			stageRow = append(stageRow, 'n')
		case "failover":
			stageRow = append(stageRow, 'F')
		default:
			stageRow = append(stageRow, 'r')
		}
	}
	fmt.Fprintf(out, "  stage %s\n\n", stageRow)
}
