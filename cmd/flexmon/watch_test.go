package main

import (
	"bufio"
	"context"
	"io"
	"strings"
	"testing"
)

// TestWatchAgainstLiveRun drives a quick emulation with -listen, then
// points `flexmon -watch` at the live surface: every poll line must
// carry a health verdict, objective and probe counts, and the
// incremental event tail.
func TestWatchAgainstLiveRun(t *testing.T) {
	pr, pw := io.Pipe()
	errCh := make(chan error, 1)
	go func() {
		err := run(context.Background(), []string{"-quick", "-listen", "127.0.0.1:0"}, pw)
		_ = pw.CloseWithError(err)
		errCh <- err
	}()

	br := bufio.NewReader(pr)
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("reading listen line: %v", err)
	}
	const prefix = "obs: listening on http://"
	if !strings.HasPrefix(line, prefix) {
		t.Fatalf("first line %q, want prefix %q", line, prefix)
	}
	addr := strings.Fields(strings.TrimPrefix(strings.TrimSpace(line), prefix))[0]

	var watchOut strings.Builder
	if err := run(context.Background(), []string{"-watch", "-url", "http://" + addr, "-every", "10ms", "-n", "3"}, &watchOut); err != nil {
		t.Fatalf("-watch: %v\n%s", err, watchOut.String())
	}
	lines := strings.Split(strings.TrimSpace(watchOut.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("watch printed %d lines, want 3:\n%s", len(lines), watchOut.String())
	}
	for _, l := range lines {
		if !strings.Contains(l, "objectives=") || !strings.Contains(l, "probe=") || !strings.Contains(l, "events+") {
			t.Fatalf("watch line missing fields: %q", l)
		}
		state := strings.Fields(l)[0]
		switch state {
		case "ready", "degraded", "unsafe":
		default:
			t.Fatalf("watch line leads with %q, want a health state: %q", state, l)
		}
	}

	// Drain the emulation and make sure it succeeded end to end.
	if _, err := io.ReadAll(br); err != nil {
		t.Fatalf("draining run output: %v", err)
	}
	if err := <-errCh; err != nil {
		t.Fatalf("run: %v", err)
	}
}
