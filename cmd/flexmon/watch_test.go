package main

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"flex/internal/obs/slo"
)

// TestWatchAgainstLiveRun drives a quick emulation with -listen, then
// points `flexmon -watch` at the live surface: every poll line must
// carry a health verdict, objective and probe counts, and the
// incremental event tail.
func TestWatchAgainstLiveRun(t *testing.T) {
	pr, pw := io.Pipe()
	errCh := make(chan error, 1)
	go func() {
		err := run(context.Background(), []string{"-quick", "-listen", "127.0.0.1:0"}, pw)
		_ = pw.CloseWithError(err)
		errCh <- err
	}()

	br := bufio.NewReader(pr)
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("reading listen line: %v", err)
	}
	const prefix = "obs: listening on http://"
	if !strings.HasPrefix(line, prefix) {
		t.Fatalf("first line %q, want prefix %q", line, prefix)
	}
	addr := strings.Fields(strings.TrimPrefix(strings.TrimSpace(line), prefix))[0]

	var watchOut strings.Builder
	if err := run(context.Background(), []string{"-watch", "-url", "http://" + addr, "-every", "10ms", "-n", "3"}, &watchOut); err != nil {
		t.Fatalf("-watch: %v\n%s", err, watchOut.String())
	}
	lines := strings.Split(strings.TrimSpace(watchOut.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("watch printed %d lines, want 3:\n%s", len(lines), watchOut.String())
	}
	for _, l := range lines {
		if !strings.Contains(l, "objectives=") || !strings.Contains(l, "probe=") || !strings.Contains(l, "events+") {
			t.Fatalf("watch line missing fields: %q", l)
		}
		state := strings.Fields(l)[0]
		switch state {
		case "ready", "degraded", "unsafe":
		default:
			t.Fatalf("watch line leads with %q, want a health state: %q", state, l)
		}
	}

	// Keep polling while the emulation runs until the per-stage latency
	// summary shows up — the auditor exports Status.Stages once the run
	// binds it to the controllers' stage histograms. A poll error means
	// the run finished and the server went away; stop then.
	sawStages := false
	for i := 0; i < 2000 && !sawStages; i++ {
		var one strings.Builder
		if err := run(context.Background(), []string{"-watch", "-url", "http://" + addr, "-n", "1"}, &one); err != nil {
			break
		}
		sawStages = strings.Contains(one.String(), "stages=")
	}
	if !sawStages {
		t.Errorf("no watch poll carried a stages= summary")
	}

	// Drain the emulation and make sure it succeeded end to end.
	if _, err := io.ReadAll(br); err != nil {
		t.Fatalf("draining run output: %v", err)
	}
	if err := <-errCh; err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestWatchStageSummaryLine pins the stage-summary formatting against a
// canned /slo payload: p99s in milliseconds, timeline order preserved,
// "!" marking a stage over its budget carve.
func TestWatchStageSummaryLine(t *testing.T) {
	status := slo.Status{
		Stages: []slo.StageStatus{
			{Name: "sample", Count: 3, P99: 0.05, BudgetSeconds: 3},
			{Name: "act", Count: 1, P99: 1.25, BudgetSeconds: 1, OverBudget: true},
		},
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(slo.Health{State: slo.StateReady})
	})
	mux.HandleFunc("/slo", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(status)
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("[]"))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	var out strings.Builder
	if err := run(context.Background(), []string{"-watch", "-url", srv.URL, "-n", "1"}, &out); err != nil {
		t.Fatalf("-watch: %v\n%s", err, out.String())
	}
	line := strings.TrimSpace(out.String())
	const want = "stages=sample:50ms,act:1250ms!"
	if !strings.Contains(line, want) {
		t.Fatalf("watch line %q missing %q", line, want)
	}
}
