package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSmallPlacement(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	csvPath := filepath.Join(dir, "rows.csv")
	var out bytes.Buffer
	err := run([]string{
		"-traces", "2", "-nodes", "100",
		"-out", tracePath, "-csvout", csvPath,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Random", "BalancedRoundRobin", "Flex-Offline-Oracle"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// The trace and CSV files exist and parse.
	if _, err := os.Stat(tracePath); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "policy,stranded_min") {
		t.Errorf("csv header: %q", string(data[:40]))
	}

	// Re-run reading the trace back in.
	out.Reset()
	if err := run([]string{"-traces", "1", "-nodes", "50", "-in", tracePath}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "1 traces") {
		t.Errorf("re-run output:\n%s", out.String())
	}
}

func TestRunPartialReserve(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-traces", "1", "-nodes", "50", "-reserve", "0.42", "-srshare", "0"}, &out); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadInputs(t *testing.T) {
	if err := run([]string{"-reserve", "2"}, &bytes.Buffer{}); err == nil {
		t.Error("expected reserve validation error")
	}
	if err := run([]string{"-in", "/definitely/missing.json"}, &bytes.Buffer{}); err == nil {
		t.Error("expected missing file error")
	}
	if err := run([]string{"-no-such-flag"}, &bytes.Buffer{}); err == nil {
		t.Error("expected flag error")
	}
}
