// Command flexplace runs the Flex-Offline placement evaluation (paper
// §V-A, Figures 9 and 10): it generates shuffled short-term-demand traces
// for the paper's 9.6MW 4N/3 room, places them with each policy, and
// prints box statistics of stranded power and throttling imbalance.
//
// Usage:
//
//	flexplace [-traces N] [-seed S] [-nodes N] [-workers N] [-maxdep R]
//	          [-srshare F] [-reserve F] [-oversub F] [-in trace.json]
//	          [-out trace.json] [-csvout rows.csv]
//	          [-policy all|random|brr|short|long|oracle|online] [-room paper|emulation]
//	flexplace -smoke
//
// -policy online runs the online incremental admitter (ROADMAP item 2):
// one deployment at a time on an allocation-free hot path, with a warm
// background ILP re-solve (run synchronously here so results are
// reproducible). -smoke runs the online-smoke acceptance check on the
// §V-C emulation trace: the placement must validate (zero Eq. 2 / Eq. 4
// violations) and strand at most 10 percentage points more power than
// the Flex-Offline optimum; exits non-zero otherwise.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"flex"
	"flex/internal/report"
	"flex/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "flexplace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("flexplace", flag.ContinueOnError)
	traces := fs.Int("traces", 10, "number of shuffled trace variations")
	seed := fs.Int64("seed", 1, "base random seed")
	nodes := fs.Int("nodes", 800, "branch-and-bound node budget per ILP batch")
	workers := fs.Int("workers", 0, "branch-and-bound workers per ILP solve (0 = NumCPU; deterministic for any value)")
	maxDep := fs.Int("maxdep", 0, "split deployments larger than this many racks (0 = off)")
	srShare := fs.Float64("srshare", 0.13, "software-redundant power share of demand")
	reserve := fs.Float64("reserve", 1.0, "fraction of reserved power allocated (§VI: 0.42 for throttle-only rooms)")
	oversub := fs.Float64("oversub", 1.0, "power oversubscription factor (>= 1)")
	traceIn := fs.String("in", "", "read the demand trace from this JSON file instead of generating one")
	traceOut := fs.String("out", "", "write the generated demand trace to this JSON file")
	csvOut := fs.String("csvout", "", "also write the Figure 9/10 rows as CSV to this file")
	policy := fs.String("policy", "all", "policy to evaluate: all, random, rr, brr, firstfit, short, long, oracle, online")
	roomKind := fs.String("room", "paper", "room to place into: paper (§V-A, 9.6MW) or emulation (§V-C, 4.8MW)")
	smoke := fs.Bool("smoke", false, "run the online-smoke acceptance check on the §V-C trace and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *smoke {
		return runOnlineSmoke(out, *seed, *nodes, *workers)
	}

	room := flex.PaperRoom()
	if *roomKind == "emulation" {
		room = flex.EmulationRoom()
	} else if *roomKind != "paper" {
		return fmt.Errorf("unknown -room %q (want paper or emulation)", *roomKind)
	}
	if *reserve != 1.0 {
		r, err := flex.NewPlacementRoom(room.Topo, flex.WithSlotsPerPair(60), flex.WithReserveUtilization(*reserve))
		if err != nil {
			return err
		}
		room = r
	}
	room.Oversubscription = *oversub
	cfg := flex.DefaultTraceConfig(room.Topo.ProvisionedPower())
	cfg.MaxDeploymentRacks = *maxDep
	if *srShare != 0.13 {
		rest := 1 - *srShare
		cfg.CategoryShares = [3]float64{*srShare, rest * 0.56 / 0.87, rest * 0.31 / 0.87}
	}

	var base []flex.Deployment
	var err error
	if *traceIn != "" {
		f, ferr := os.Open(*traceIn)
		if ferr != nil {
			return ferr
		}
		base, err = flex.ReadTrace(f)
		_ = f.Close()
	} else {
		base, err = flex.GenerateTrace(cfg, *seed)
	}
	if err != nil {
		return err
	}
	if *traceOut != "" {
		f, ferr := os.Create(*traceOut)
		if ferr != nil {
			return ferr
		}
		if err := flex.WriteTrace(f, base); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	variations := make([][]flex.Deployment, *traces)
	for i := range variations {
		variations[i] = flex.ShuffleTrace(base, *seed+int64(i)*101)
	}

	short, long, oracle := flex.FlexOfflineShort(), flex.FlexOfflineLong(), flex.FlexOfflineOracle()
	short.MaxNodes, long.MaxNodes, oracle.MaxNodes = *nodes/2, *nodes, *nodes*2
	short.Workers, long.Workers, oracle.Workers = *workers, *workers, *workers
	online := flex.NewOnlinePlacement(flex.WithPlacementSeed(*seed), flex.WithSyncResolve())
	var policies []flex.Policy
	switch *policy {
	case "all":
		policies = []flex.Policy{
			flex.RandomPolicy{Seed: *seed},
			flex.BalancedRoundRobinPolicy{},
			short, long, oracle, online,
		}
	case "random":
		policies = []flex.Policy{flex.RandomPolicy{Seed: *seed}}
	case "rr":
		policies = []flex.Policy{flex.RoundRobinPolicy{}}
	case "brr":
		policies = []flex.Policy{flex.BalancedRoundRobinPolicy{}}
	case "firstfit":
		policies = []flex.Policy{flex.FirstFitPolicy{}}
	case "short":
		policies = []flex.Policy{short}
	case "long":
		policies = []flex.Policy{long}
	case "oracle":
		policies = []flex.Policy{oracle}
	case "online":
		policies = []flex.Policy{online}
	default:
		return fmt.Errorf("unknown -policy %q", *policy)
	}

	fmt.Fprintf(out, "Room: %v provisioned, %v design, %d PDU-pairs, %d traces\n\n",
		room.Topo.ProvisionedPower(), room.Topo.Design, len(room.Topo.Pairs), *traces)
	fmt.Fprintf(out, "%-22s  %-52s  %s\n", "policy", "stranded power (% of provisioned)", "throttling imbalance (%)")
	var csvRows []report.PolicyRow
	for _, pol := range policies {
		var stranded, imbalance []float64
		for _, tr := range variations {
			pl, err := pol.Place(context.Background(), room, tr)
			if err != nil {
				return fmt.Errorf("%s: %w", pol.Name(), err)
			}
			if err := pl.Validate(); err != nil {
				return fmt.Errorf("%s produced unsafe placement: %w", pol.Name(), err)
			}
			stranded = append(stranded, pl.StrandedFraction()*100)
			imbalance = append(imbalance, pl.ThrottlingImbalance()*100)
		}
		fmt.Fprintf(out, "%-22s  %-52s  %s\n", pol.Name(),
			stats.BoxOf(stranded).String(), stats.BoxOf(imbalance).String())
		csvRows = append(csvRows, report.PolicyRow{
			Policy:    pol.Name(),
			Stranded:  stats.BoxOf(stranded),
			Imbalance: stats.BoxOf(imbalance),
		})
	}
	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			return err
		}
		if err := report.WritePolicyBoxes(f, csvRows); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nwrote %s\n", *csvOut)
	}
	return nil
}

// runOnlineSmoke is the `make online-smoke` acceptance check (ISSUE 9):
// the online policy on the §V-C emulation trace must produce a safe
// placement — zero Eq. 2 normal-operation violations, zero Eq. 4
// failover violations — and strand at most 10 percentage points more
// power than the Flex-Offline optimum. Re-solves run synchronously, so
// the check is deterministic for a fixed seed.
func runOnlineSmoke(out io.Writer, seed int64, nodes, workers int) error {
	room := flex.EmulationRoom()
	trace, err := flex.GenerateTrace(flex.DefaultTraceConfig(room.Topo.ProvisionedPower()), seed)
	if err != nil {
		return err
	}
	online := flex.NewOnlinePlacement(flex.WithPlacementSeed(seed), flex.WithSyncResolve())
	onp, err := online.Place(context.Background(), room, trace)
	if err != nil {
		return fmt.Errorf("online placement: %w", err)
	}
	if err := onp.Validate(); err != nil {
		return fmt.Errorf("online placement unsafe: %w", err)
	}
	// Validate covers Eq. 2 as part of the full safety re-check; count the
	// violations explicitly anyway, since "zero Eq. 2 violations" is the
	// smoke criterion by name.
	eq2 := 0
	for u, w := range room.Topo.UPSLoads(onp.PairLoad()) {
		if w > room.NormalLimit(flex.UPSID(u))+flex.CapacityTolerance {
			eq2++
		}
	}
	if eq2 != 0 {
		return fmt.Errorf("online placement has %d Eq. 2 violations", eq2)
	}
	oracle := flex.FlexOfflineOracle()
	oracle.MaxNodes, oracle.Workers = nodes*2, workers
	offp, err := oracle.Place(context.Background(), flex.EmulationRoom(), trace)
	if err != nil {
		return fmt.Errorf("offline reference: %w", err)
	}
	gap := onp.StrandedFraction() - offp.StrandedFraction()
	fmt.Fprintf(out, "online-smoke: §V-C trace, %d deployments\n", len(trace))
	fmt.Fprintf(out, "  online:  placed %d/%d, stranded %.2f%%\n",
		len(onp.Assignments), len(trace), onp.StrandedFraction()*100)
	fmt.Fprintf(out, "  offline: placed %d/%d, stranded %.2f%%\n",
		len(offp.Assignments), len(trace), offp.StrandedFraction()*100)
	fmt.Fprintf(out, "  gap %.2fpp (bound 10pp), Eq. 2 violations: %d, safety: ok\n", gap*100, eq2)
	if gap > 0.10 {
		return fmt.Errorf("online stranded power gap %.2fpp exceeds the 10pp bound", gap*100)
	}
	return nil
}
