// Command flexplace runs the Flex-Offline placement evaluation (paper
// §V-A, Figures 9 and 10): it generates shuffled short-term-demand traces
// for the paper's 9.6MW 4N/3 room, places them with each policy, and
// prints box statistics of stranded power and throttling imbalance.
//
// Usage:
//
//	flexplace [-traces N] [-seed S] [-nodes N] [-workers N] [-maxdep R]
//	          [-srshare F] [-reserve F] [-oversub F] [-in trace.json]
//	          [-out trace.json] [-csvout rows.csv]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"flex"
	"flex/internal/report"
	"flex/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "flexplace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("flexplace", flag.ContinueOnError)
	traces := fs.Int("traces", 10, "number of shuffled trace variations")
	seed := fs.Int64("seed", 1, "base random seed")
	nodes := fs.Int("nodes", 800, "branch-and-bound node budget per ILP batch")
	workers := fs.Int("workers", 0, "branch-and-bound workers per ILP solve (0 = NumCPU; deterministic for any value)")
	maxDep := fs.Int("maxdep", 0, "split deployments larger than this many racks (0 = off)")
	srShare := fs.Float64("srshare", 0.13, "software-redundant power share of demand")
	reserve := fs.Float64("reserve", 1.0, "fraction of reserved power allocated (§VI: 0.42 for throttle-only rooms)")
	oversub := fs.Float64("oversub", 1.0, "power oversubscription factor (>= 1)")
	traceIn := fs.String("in", "", "read the demand trace from this JSON file instead of generating one")
	traceOut := fs.String("out", "", "write the generated demand trace to this JSON file")
	csvOut := fs.String("csvout", "", "also write the Figure 9/10 rows as CSV to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	room := flex.PaperRoom()
	if *reserve != 1.0 {
		r, err := flex.NewPlacementRoom(room.Topo, flex.WithSlotsPerPair(60), flex.WithReserveUtilization(*reserve))
		if err != nil {
			return err
		}
		room = r
	}
	room.Oversubscription = *oversub
	cfg := flex.DefaultTraceConfig(room.Topo.ProvisionedPower())
	cfg.MaxDeploymentRacks = *maxDep
	if *srShare != 0.13 {
		rest := 1 - *srShare
		cfg.CategoryShares = [3]float64{*srShare, rest * 0.56 / 0.87, rest * 0.31 / 0.87}
	}

	var base []flex.Deployment
	var err error
	if *traceIn != "" {
		f, ferr := os.Open(*traceIn)
		if ferr != nil {
			return ferr
		}
		base, err = flex.ReadTrace(f)
		_ = f.Close()
	} else {
		base, err = flex.GenerateTrace(cfg, *seed)
	}
	if err != nil {
		return err
	}
	if *traceOut != "" {
		f, ferr := os.Create(*traceOut)
		if ferr != nil {
			return ferr
		}
		if err := flex.WriteTrace(f, base); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	variations := make([][]flex.Deployment, *traces)
	for i := range variations {
		variations[i] = flex.ShuffleTrace(base, *seed+int64(i)*101)
	}

	short, long, oracle := flex.FlexOfflineShort(), flex.FlexOfflineLong(), flex.FlexOfflineOracle()
	short.MaxNodes, long.MaxNodes, oracle.MaxNodes = *nodes/2, *nodes, *nodes*2
	short.Workers, long.Workers, oracle.Workers = *workers, *workers, *workers
	policies := []flex.Policy{
		flex.RandomPolicy{Seed: *seed},
		flex.BalancedRoundRobinPolicy{},
		short, long, oracle,
	}

	fmt.Fprintf(out, "Room: %v provisioned, %v design, %d PDU-pairs, %d traces\n\n",
		room.Topo.ProvisionedPower(), room.Topo.Design, len(room.Topo.Pairs), *traces)
	fmt.Fprintf(out, "%-22s  %-52s  %s\n", "policy", "stranded power (% of provisioned)", "throttling imbalance (%)")
	var csvRows []report.PolicyRow
	for _, pol := range policies {
		var stranded, imbalance []float64
		for _, tr := range variations {
			pl, err := pol.Place(context.Background(), room, tr)
			if err != nil {
				return fmt.Errorf("%s: %w", pol.Name(), err)
			}
			if err := pl.Validate(); err != nil {
				return fmt.Errorf("%s produced unsafe placement: %w", pol.Name(), err)
			}
			stranded = append(stranded, pl.StrandedFraction()*100)
			imbalance = append(imbalance, pl.ThrottlingImbalance()*100)
		}
		fmt.Fprintf(out, "%-22s  %-52s  %s\n", pol.Name(),
			stats.BoxOf(stranded).String(), stats.BoxOf(imbalance).String())
		csvRows = append(csvRows, report.PolicyRow{
			Policy:    pol.Name(),
			Stranded:  stats.BoxOf(stranded),
			Imbalance: stats.BoxOf(imbalance),
		})
	}
	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			return err
		}
		if err := report.WritePolicyBoxes(f, csvRows); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nwrote %s\n", *csvOut)
	}
	return nil
}
