// Command flexreplay deterministically re-drives a recorded Flex
// episode log and diffs the replayed planning decisions against the
// recorded ones:
//
//	flexsim -experiment episode -record episode.jsonl
//	flexreplay episode.jsonl
//
// The log must start with a replay header (flexsim's episode experiment
// and the emulation harness emit one). Replay reconstructs every
// controller's exact planning input from the event stream — telemetry
// views from sample-arrive events, acted sets from action acks — reruns
// Algorithm 1 at each recorded plan-start on a virtual clock, and
// reports any divergence. Exit status is non-zero when the diff is not
// empty.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"flex/internal/obs/recorder"
	"flex/internal/replay"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "flexreplay:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("flexreplay", flag.ContinueOnError)
	minPlans := fs.Int("min-plans", 0, "fail unless at least this many planning passes were replayed")
	episode := fs.Uint64("episode", 0, "also print the causal chain of this episode ID")
	verbose := fs.Bool("v", false, "print every plan verdict, not just divergences")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: flexreplay [-min-plans N] [-episode ID] [-v] <episode.jsonl>")
	}

	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	events, err := recorder.ReadEvents(f)
	_ = f.Close()
	if err != nil {
		return fmt.Errorf("reading %s: %w", fs.Arg(0), err)
	}

	rep, err := replay.Replay(context.Background(), events)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "replayed %d events spanning %v: %d episodes, %d plans (%d matched, %d diverged)\n",
		rep.Events, rep.Elapsed, rep.Episodes, len(rep.Plans), rep.Matched, rep.Mismatched)
	for _, p := range rep.Plans {
		if p.Match && !*verbose {
			continue
		}
		verdict := "MATCH"
		if !p.Match {
			verdict = "DIVERGED"
		}
		fmt.Fprintf(out, "  plan seq=%d actor=%s episode=%d actions=%d/%d %s",
			p.Seq, p.Actor, p.Episode, p.Recorded, p.Replayed, verdict)
		if p.Aborted {
			fmt.Fprint(out, " (aborted: prefix check)")
		}
		if p.Mismatch != "" {
			fmt.Fprintf(out, ": %s", p.Mismatch)
		}
		fmt.Fprintln(out)
	}

	if *episode != 0 {
		chain := recorder.ApplyFilter(events, recorder.Filter{Episode: *episode, WithCauses: true})
		fmt.Fprintf(out, "episode %d causal chain (%d events):\n", *episode, len(chain))
		for _, e := range chain {
			fmt.Fprintf(out, "  seq=%-8d cause=%-8d %-20s actor=%-12s subject=%-16s value=%.1f %s\n",
				e.Seq, e.Cause, e.Type, e.Actor, e.Subject, e.Value, e.Detail)
		}
	}

	if len(rep.Plans) < *minPlans {
		return fmt.Errorf("replayed only %d plans, want at least %d", len(rep.Plans), *minPlans)
	}
	if !rep.DiffEmpty() {
		return fmt.Errorf("decision diff not empty: %d of %d plans diverged", rep.Mismatched, len(rep.Plans))
	}
	fmt.Fprintln(out, "decision diff empty: replay reproduces the recorded run")
	return nil
}
