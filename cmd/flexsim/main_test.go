package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFeasibility(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-experiment", "feasibility"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"75.0% utilization", "nines"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunCostAndDesigns(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-experiment", "cost"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "$213M") {
		t.Errorf("cost output missing savings:\n%s", out.String())
	}
	out.Reset()
	if err := run(context.Background(), []string{"-experiment", "designs"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "4N/3 (paper)") {
		t.Errorf("designs output missing 4N/3:\n%s", out.String())
	}
}

func TestRunMonteCarlo(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-experiment", "montecarlo"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no-action availability") {
		t.Errorf("montecarlo output:\n%s", out.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(context.Background(), []string{"-experiment", "nope"}, &bytes.Buffer{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestRunBadFlag(t *testing.T) {
	// ContinueOnError turns flag errors into returns, not exits.
	if err := run(context.Background(), []string{"-definitely-not-a-flag"}, &bytes.Buffer{}); err == nil {
		t.Fatal("expected flag error")
	}
}

func TestRunFigure12WithCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("fig12 sweep is slow")
	}
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-experiment", "fig12", "-samples", "1", "-csvdir", dir}, &out); err != nil {
		t.Fatal(err)
	}
	for _, sc := range []string{"Extreme-1", "Extreme-2", "Realistic-1", "Realistic-2"} {
		if !strings.Contains(out.String(), sc+":") {
			t.Errorf("missing scenario %s", sc)
		}
		data, err := os.ReadFile(filepath.Join(dir, "figure12-"+sc+".csv"))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(string(data), "scenario,utilization") {
			t.Errorf("%s csv header wrong", sc)
		}
	}
}
