// Command flexsim runs the Flex analyses and snapshot simulations:
//
//	flexsim -experiment fig12        Figure 12 runtime-decision sweep
//	flexsim -experiment episode      §V-C UPS-failure episode (replayable)
//	flexsim -experiment fleet        multi-room sharded fleet (-rooms N)
//	flexsim -experiment feasibility  §III joint-probability analysis
//	flexsim -experiment montecarlo   §III Monte Carlo cross-check
//	flexsim -experiment cost         §I construction-cost savings
//	flexsim -experiment designs      §II-A redundancy design comparison
//
// -record FILE writes a flight-recorder event log (length-prefixed
// JSONL). An episode recording starts with a replay header and can be
// re-driven with flexreplay; fig12 recordings are headerless and are for
// /events browsing only.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"

	"flex"
	"flex/internal/milp"
	"flex/internal/obs"
	"flex/internal/obs/slo"
	"flex/internal/obs/tsdb"
	"flex/internal/report"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "flexsim:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("flexsim", flag.ContinueOnError)
	experiment := fs.String("experiment", "fig12", "fig12|episode|fleet|feasibility|montecarlo|cost|designs")
	seed := fs.Int64("seed", 1, "random seed")
	rooms := fs.Int("rooms", 10, "fleet experiment: number of UPS fault domains")
	samples := fs.Int("samples", 3, "power snapshots per (failure, utilization)")
	workers := fs.Int("workers", 0, "branch-and-bound workers per ILP solve (0 = NumCPU; deterministic for any value)")
	csvDir := fs.String("csvdir", "", "also write results as CSV files into this directory")
	listen := fs.String("listen", "", "serve /metrics, /debug/vars, /debug/pprof on this address during the run (e.g. :8080)")
	record := fs.String("record", "", "write the flight-recorder event log to this file (JSONL)")
	withSLO := fs.Bool("slo", false, "episode experiment: run the continuous safety auditor, print an SLO summary, and fail unless /healthz flips healthy→degraded→healthy with a probe-fail-free steady state (the slo-smoke gate)")
	latency := fs.Bool("latency", false, "fleet experiment: print the per-episode latency waterfall and fail unless the failed room's stitched stages reconcile with the measured shed latency and every stage p99 sits inside its 10s-budget carve (the latency-smoke gate)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var rec *flex.FlightRecorder
	if *record != "" {
		f, err := os.Create(*record)
		if err != nil {
			return err
		}
		// 1<<18 events outlasts the compressed episode run; Overwritten()
		// is checked below so a silently truncated ring cannot masquerade
		// as a complete log.
		rec = flex.NewFlightRecorder(1 << 18)
		rec.AttachSink(flex.NewFlightSink(f))
		defer func() {
			if err := rec.DetachSink(); err != nil {
				fmt.Fprintln(os.Stderr, "flexsim: flushing event log:", err)
			}
			if n := rec.Overwritten(); n > 0 {
				fmt.Fprintf(os.Stderr, "flexsim: ring overwrote %d events; the in-memory log is incomplete\n", n)
			}
			fmt.Fprintf(out, "recorded %d events to %s\n", rec.Emitted(), *record)
		}()
	}

	reg := obs.NewRegistry()
	reg.Gauge("flex_up", "1 while the process is running").Set(1)
	var aud *slo.Auditor
	srvCfg := obs.ServerConfig{Registry: reg, Events: rec}
	if *withSLO {
		store := tsdb.NewStore(tsdb.Options{})
		aud = slo.NewAuditor(slo.Config{
			Store:    store,
			Recorder: rec,
			// The emulator pumps UPS telemetry every 1.5s and rack
			// telemetry every 2s; thresholds must sit above the cadence.
			UPSFreshness:  3 * time.Second,
			RackFreshness: 4 * time.Second,
		})
		srvCfg.Query = store.Handler()
		srvCfg.SLO = aud.SLOHandler()
		srvCfg.Health = aud.HealthHandler()
	}
	// The obs server starts before the fleet emulation assembles its
	// shards, so /fleet and /fleet/traces are mounted through late-bound
	// handlers the emulation fills in via FleetEmulationConfig.Attach.
	var fleetH, fleetTracesH *lateHandler
	if *experiment == "fleet" {
		fleetH, fleetTracesH = new(lateHandler), new(lateHandler)
		srvCfg.Fleet, srvCfg.FleetTraces = fleetH, fleetTracesH
	}
	if *listen != "" {
		addr, stop, err := obs.StartServer(*listen, srvCfg)
		if err != nil {
			return err
		}
		defer stop()
		fmt.Fprintf(out, "obs: listening on http://%s (/metrics /debug/vars /debug/pprof /events)\n", addr)
	}

	switch *experiment {
	case "fig12":
		return runFigure12(out, *seed, *samples, *workers, *csvDir, milp.NewMetrics(reg), rec)
	case "episode":
		return runEpisode(ctx, out, *seed, rec, reg, aud)
	case "fleet":
		return runFleet(ctx, out, *rooms, *seed, reg, rec, *latency, fleetH, fleetTracesH)
	case "feasibility":
		return runFeasibility(out)
	case "montecarlo":
		return runMonteCarlo(out, *seed)
	case "cost":
		return runCost(out)
	case "designs":
		return runDesigns(out)
	default:
		return fmt.Errorf("unknown experiment %q", *experiment)
	}
}

// runEpisode drives the compressed §V-C emulation — setup, single-UPS
// failure at 4 minutes, recovery at 7 — so a complete, replayable
// overdraw episode is captured in a few hundred milliseconds of wall
// time on the virtual clock.
func runEpisode(ctx context.Context, out io.Writer, seed int64, rec *flex.FlightRecorder, reg *obs.Registry, aud *slo.Auditor) error {
	cfg := flex.EmulationConfig{
		Tick:      time.Second,
		FailAt:    4 * time.Minute,
		RecoverAt: 7 * time.Minute,
		Duration:  10 * time.Minute,
		Seed:      seed,
		Recorder:  rec,
	}
	if aud != nil {
		cfg.Obs = reg // the tsdb sampler scrapes the registry each tick
		cfg.Safety = aud
	}
	res, err := flex.RunEmulationContext(ctx, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "episode: UPS failure at 4m, recovery at 7m (virtual clock)\n")
	fmt.Fprintf(out, "  detection latency: %v, shave latency: %v\n", res.DetectionLatency, res.ShaveLatency)
	fmt.Fprintf(out, "  SR shutdown: %.0f%%, cap-able throttled: %.0f%%, outage: %v, restored: %v\n",
		res.SRShutdownFrac*100, res.CapThrottledFrac*100, res.Outage, res.RestoredAll)
	if rec != nil && rec.Overwritten() > 0 {
		return fmt.Errorf("flight-recorder ring overwrote %d events; recording is not replayable", rec.Overwritten())
	}
	if aud == nil {
		return nil
	}
	fmt.Fprintln(out)
	if err := report.WriteSLOSummary(out, aud.Status(), aud.Transitions()); err != nil {
		return err
	}
	return assertSLOSmoke(aud)
}

// assertSLOSmoke is the `make slo-smoke` gate: the audited episode must
// flip /healthz healthy→degraded→healthy without ever going unsafe, and
// the what-if probe must end in a probe-fail-free steady state.
func assertSLOSmoke(aud *slo.Auditor) error {
	var sawDegrade, sawRecover bool
	for _, tr := range aud.Transitions() {
		if tr.To == slo.StateUnsafe {
			return fmt.Errorf("slo-smoke: health went unsafe at %v: %v", tr.Time, tr.Reasons)
		}
		if tr.From == slo.StateReady && tr.To == slo.StateDegraded {
			sawDegrade = true
		}
		if sawDegrade && tr.From == slo.StateDegraded && tr.To == slo.StateReady {
			sawRecover = true
		}
	}
	if !sawDegrade || !sawRecover {
		return fmt.Errorf("slo-smoke: /healthz never flipped healthy→degraded→healthy (transitions: %+v)", aud.Transitions())
	}
	if h := aud.Health(); h.State != slo.StateReady {
		return fmt.Errorf("slo-smoke: final health %v (%v), want ready", h.State, h.Reasons)
	}
	st := aud.Status()
	if st.Probe.Rounds == 0 {
		return fmt.Errorf("slo-smoke: what-if probe never ran")
	}
	if st.Probe.Failures != 0 {
		return fmt.Errorf("slo-smoke: %d probe failures (infeasible: %v)", st.Probe.Failures, st.Probe.Infeasible)
	}
	if st.Probe.CleanRounds == 0 {
		return fmt.Errorf("slo-smoke: no probe-fail-free steady state at end of run")
	}
	return nil
}

func runFigure12(out io.Writer, seed int64, samples, workers int, csvDir string, sm *milp.Metrics, rec *flex.FlightRecorder) error {
	room := flex.PaperRoom()
	trace, err := flex.GenerateTrace(flex.DefaultTraceConfig(room.Topo.ProvisionedPower()), seed)
	if err != nil {
		return err
	}
	pol := flex.FlexOfflineShort()
	pol.MaxNodes = 300
	pol.SolverMetrics = sm
	pol.Workers = workers
	pl, err := pol.Place(context.Background(), room, trace)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Figure 12: Flex-Online decisions vs utilization (mean±std over all UPS failures)\n")
	for _, sc := range flex.Figure11Scenarios() {
		pts, err := flex.RunFigure12(flex.Figure12Config{
			Placement:         pl,
			Scenario:          sc,
			Utilizations:      []float64{0.74, 0.76, 0.78, 0.80, 0.82, 0.84},
			SamplesPerFailure: samples,
			Seed:              seed,
			Recorder:          rec,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\n%s:\n  %-6s %-14s %-14s %-14s\n", sc.Name, "util", "impacted%", "shutdown%", "throttled%")
		for _, p := range pts {
			fmt.Fprintf(out, "  %-6.2f %-14s %-14s %-14s\n",
				p.Utilization, p.Impacted, p.ShutDown, p.Throttled)
		}
		if csvDir != "" {
			name := filepath.Join(csvDir, "figure12-"+sc.Name+".csv")
			f, err := os.Create(name)
			if err != nil {
				return err
			}
			if err := report.WriteFigure12(f, sc.Name, pts); err != nil {
				_ = f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(out, "  wrote %s\n", name)
		}
	}
	return nil
}

func runFeasibility(out io.Writer) error {
	a, err := flex.AnalyzeFeasibility(flex.DefaultFeasibilityParams())
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "Section III feasibility analysis (paper targets in parentheses):")
	fmt.Fprintf(out, "  corrective-action threshold:      %.1f%% utilization (75%%)\n", a.ActionThreshold*100)
	fmt.Fprintf(out, "  SR-shutdown threshold:            %.1f%% utilization\n", a.ShutdownThreshold*100)
	fmt.Fprintf(out, "  P(corrective action needed):      %.5f%%\n", a.ProbActionNeeded*100)
	fmt.Fprintf(out, "  no-action availability:           %.5f%% → %.1f nines (≥4 nines)\n",
		a.NoActionAvailability*100, a.NoActionNines)
	fmt.Fprintf(out, "  P(SR rack shutdown):              %.5f%% (≈0.005%%)\n", a.ProbSRShutdown*100)
	fmt.Fprintf(out, "  SR server availability:           %.1f nines (≥4 nines)\n", a.SRNines)
	fmt.Fprintf(out, "  non-redundant availability:       %.1f nines (5 nines by design)\n", a.NonRedundantNines)
	return nil
}

func runMonteCarlo(out io.Writer, seed int64) error {
	p := flex.DefaultMonteCarloParams()
	p.Seed = seed
	p.Years = 300
	res, err := flex.SimulateYears(p)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Section III Monte Carlo (%d simulated years):\n", p.Years)
	fmt.Fprintf(out, "  maintenance:            %.1f h/yr\n", float64(res.MaintenanceHours)/float64(p.Years))
	fmt.Fprintf(out, "  corrective actions:     %.2f h/yr (throttle-only %.2f, SR shutdown %.2f)\n",
		float64(res.ActionHours)/float64(p.Years),
		float64(res.ThrottleOnlyHours)/float64(p.Years),
		float64(res.SRShutdownHours)/float64(p.Years))
	fmt.Fprintf(out, "  no-action availability: %.5f%% (%.1f nines)\n", res.NoActionAvailability*100, res.NoActionNines)
	fmt.Fprintf(out, "  SR availability:        %.5f%% (%.1f nines)\n", res.SRAvailability*100, res.SRNines)
	return nil
}

func runCost(out io.Writer) error {
	fmt.Fprintln(out, "Section I construction-cost savings for a 128MW site (paper: $211M @$5/W, $422M @$10/W):")
	for _, dpw := range []float64{5, 10} {
		s, err := flex.ComputeSavings(flex.Redundancy{X: 4, Y: 3}, 128*flex.MW, dpw)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "  $%2.0f/W: +%.1f%% servers (+%v) → $%.0fM\n",
			dpw, s.ExtraServerFraction*100, s.ExtraPower, s.Dollars/1e6)
	}
	return nil
}

func runDesigns(out io.Writer) error {
	fmt.Fprintln(out, "Redundancy designs (§II-A): reserved power and Flex gains")
	fmt.Fprintf(out, "  %-14s %-10s %-10s %s\n", "design", "reserved", "Flex gain", "worst failover load")
	for _, d := range flex.CompareDesigns() {
		fmt.Fprintf(out, "  %-14s %-10.1f%% %-10.1f%% %.0f%%\n",
			d.Name, d.ReservedFraction*100, d.ExtraServerFraction*100, d.WorstFailoverLoad*100)
	}
	return nil
}

// lateHandler mounts an HTTP endpoint before its backend exists: the obs
// server starts first, the fleet emulation publishes its handlers via
// FleetEmulationConfig.Attach once the shards are assembled.
type lateHandler struct{ h atomic.Value }

func (l *lateHandler) set(h http.Handler) { l.h.Store(h) }

func (l *lateHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h, ok := l.h.Load().(http.Handler); ok {
		h.ServeHTTP(w, r)
		return
	}
	http.Error(w, "fleet emulation not running yet", http.StatusServiceUnavailable)
}

// runFleet drives the multi-room sharded fleet emulation and asserts the
// smoke criteria: every shard ready in the final snapshot, the aggregate
// stranded power equal to the sum of per-room Eq. 5, the failed room shed
// within the 10s budget, and zero cross-shard drops. With latency set it
// additionally prints and asserts the critical-path attribution (the
// latency-smoke gate).
func runFleet(ctx context.Context, out io.Writer, rooms int, seed int64, reg *obs.Registry, rec *flex.FlightRecorder, latency bool, fleetH, tracesH *lateHandler) error {
	if latency && rec == nil {
		// Waterfall stitching groups traces by flight-recorder episode id
		// and the exemplar joins point at recorder events, so the latency
		// gate always runs recorded — in memory when -record is absent.
		rec = flex.NewFlightRecorder(1 << 18)
	}
	failRoom := rooms / 2
	res, err := flex.RunFleetEmulationContext(ctx, flex.FleetEmulationConfig{
		Rooms:    rooms,
		FailRoom: failRoom,
		Seed:     seed,
		Obs:      reg,
		Recorder: rec,
		Attach: func(fl *flex.Fleet) {
			if fleetH != nil {
				fleetH.set(fl.Handler())
				tracesH.set(fl.TracesHandler())
			}
		},
	})
	if err != nil {
		return err
	}
	snap := res.Snapshot
	fmt.Fprintf(out, "fleet: %d rooms, UPS failure in room %d (virtual clock)\n", res.Rooms, rooms/2)
	fmt.Fprintf(out, "  detect latency: %v, shed latency: %v (budget %v)\n",
		res.DetectLatency, res.ShedLatency, flex.FlexLatencyBudget)
	fmt.Fprintf(out, "  fleet state: %v (%d/%d shards ready), stranded %v, allocatable %v, committed headroom %v\n",
		snap.State, snap.Ready, len(snap.Rooms), snap.StrandedPower, snap.AllocatablePower, snap.CommittedHeadroom)

	if res.ShedLatency < 0 || res.ShedLatency > flex.FlexLatencyBudget {
		return fmt.Errorf("fleet smoke: shed latency %v outside the %v budget", res.ShedLatency, flex.FlexLatencyBudget)
	}
	if res.Outage {
		return fmt.Errorf("fleet smoke: a UPS outlasted its trip curve")
	}
	if res.CrossRoomDrops != 0 {
		return fmt.Errorf("fleet smoke: %d samples dropped outside the saturated room, want 0", res.CrossRoomDrops)
	}
	if snap.Ready != len(snap.Rooms) {
		for _, r := range snap.Rooms {
			if r.State != slo.StateReady {
				fmt.Fprintf(out, "  room %s: %v %v\n", r.Name, r.State, r.Reasons)
			}
		}
		return fmt.Errorf("fleet smoke: %d/%d shards ready, want all", snap.Ready, len(snap.Rooms))
	}
	if want := flex.Watts(rooms) * res.PerRoomStranded; snap.StrandedPower != want {
		return fmt.Errorf("fleet smoke: aggregate stranded %v, want %d × %v = %v",
			snap.StrandedPower, rooms, res.PerRoomStranded, want)
	}
	fmt.Fprintln(out, "  fleet smoke: ok")
	if latency {
		return assertLatencySmoke(out, res, fmt.Sprintf("room-%03d", failRoom))
	}
	return nil
}

// Reconciliation tolerances for the latency-smoke gate. Stage durations
// tile the stitched episode span by construction, so their sum matches
// TotalSeconds to float rounding; the measured shed latency additionally
// includes the UPS sampling cadence (1.5s) before the first stamped
// sample and the trip-check granularity after the last actuation, so it
// reconciles within one cadence plus slack.
const (
	stageSumTolerance  = 0.1 // seconds
	shedMatchTolerance = 2.5 // seconds
)

// assertLatencySmoke is the `make latency-smoke` gate: the failed room's
// detect→shed episode must surface as a stitched waterfall whose stage
// durations tile the episode span, the waterfall must reconcile with the
// measured shed latency, every stage p99 must sit inside its carve of
// the 10s budget, and the stage exemplars must resolve to flight-recorder
// episodes and events.
func assertLatencySmoke(out io.Writer, res *flex.FleetEmulationResult, failRoom string) error {
	// Per-stage digests against the budget carve.
	if len(res.Stages) == 0 {
		return fmt.Errorf("latency-smoke: no stage digests (fleet not instrumented)")
	}
	budgets := map[string]time.Duration{}
	for _, st := range obs.Stages() {
		budgets[st.String()] = slo.StageBudgets()[st]
	}
	fmt.Fprintf(out, "  %-8s %-8s %-12s %-12s %s\n", "stage", "count", "p50", "p99", "budget")
	observed := 0
	for _, st := range res.Stages {
		fmt.Fprintf(out, "  %-8s %-8d %-12s %-12s %v\n", st.Stage, st.Count,
			fmt.Sprintf("%.3fs", st.P50), fmt.Sprintf("%.3fs", st.P99), budgets[st.Stage])
		if st.Count == 0 {
			continue
		}
		observed++
		if b := budgets[st.Stage]; st.P99 > b.Seconds() {
			return fmt.Errorf("latency-smoke: stage %s p99 %.3fs over its %v budget carve", st.Stage, st.P99, b)
		}
		if st.Exemplar == nil || st.Exemplar.Episode == 0 || st.Exemplar.Event == 0 {
			return fmt.Errorf("latency-smoke: stage %s exemplar does not resolve to a recorder event (%+v)", st.Stage, st.Exemplar)
		}
	}
	if observed == 0 {
		return fmt.Errorf("latency-smoke: stage histograms are empty")
	}

	// The failed room's stitched waterfall.
	var ep *flex.FleetEpisodeTrace
	for i := range res.Episodes {
		if res.Episodes[i].Room == failRoom {
			ep = &res.Episodes[i]
			break
		}
	}
	if ep == nil {
		return fmt.Errorf("latency-smoke: no stitched episode for failed room %s (%d episodes total)", failRoom, len(res.Episodes))
	}
	if ep.Root == 0 {
		return fmt.Errorf("latency-smoke: episode %d has no recorder root event", ep.Episode)
	}
	names := make([]string, 0, len(ep.TotalsSeconds))
	for name := range ep.TotalsSeconds {
		names = append(names, name)
	}
	sort.Strings(names)
	var sum float64
	fmt.Fprintf(out, "  episode %d (%s, root event %d): %d rounds over %.3fs\n",
		ep.Episode, ep.Room, ep.Root, ep.Traces, ep.TotalSeconds)
	for _, name := range names {
		sum += ep.TotalsSeconds[name]
		fmt.Fprintf(out, "    %-8s %.3fs\n", name, ep.TotalsSeconds[name])
	}
	if d := sum - ep.TotalSeconds; d > stageSumTolerance || d < -stageSumTolerance {
		return fmt.Errorf("latency-smoke: episode %d stage sum %.3fs vs span %.3fs, want within %.1fs",
			ep.Episode, sum, ep.TotalSeconds, stageSumTolerance)
	}
	if d := res.ShedLatency.Seconds() - ep.TotalSeconds; d > shedMatchTolerance || d < -shedMatchTolerance {
		return fmt.Errorf("latency-smoke: measured shed latency %v vs episode span %.3fs, want within %.1fs",
			res.ShedLatency, ep.TotalSeconds, shedMatchTolerance)
	}
	fmt.Fprintln(out, "  latency smoke: ok")
	return nil
}
