// Command benchjson converts `go test -bench` text output into a JSON
// baseline (see `make bench`, which writes BENCH_baseline.json). Every
// parsed record keeps its raw result line, so the original benchstat input
// can be reconstructed exactly:
//
//	go test -run '^$' -bench . -benchmem . | benchjson -o BENCH_baseline.json
//	benchjson -restore BENCH_baseline.json | benchstat old.txt /dev/stdin
//
// Two baselines can be diffed directly — every metric of every benchmark
// present in both files, old vs new with the delta (this is how the
// stranded-power gap-pp of BENCH_online.json is tracked across runs):
//
//	benchjson -compare BENCH_online.json BENCH_online.new.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"time"

	"flex/internal/clock"
)

// Baseline is the file layout of BENCH_baseline.json.
type Baseline struct {
	// Commit is the git commit the baseline was captured at (empty when
	// the tree was not a git checkout at capture time).
	Commit string `json:"commit,omitempty"`
	// GeneratedAt is the UTC capture time, RFC 3339.
	GeneratedAt string `json:"generated_at,omitempty"`
	// Env holds the `key: value` header lines (goos, goarch, pkg, cpu).
	Env map[string]string `json:"env"`
	// Benchmarks holds one record per result line, in input order.
	Benchmarks []Record `json:"benchmarks"`
}

// provenance stamps a freshly parsed baseline with the current git
// commit and capture time, so two BENCH_*.json files are comparable as
// points in history. Both stamps are best-effort: outside a git checkout
// the commit is simply absent.
func provenance(b *Baseline) {
	if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		b.Commit = strings.TrimSpace(string(out))
	}
	var clk clock.Clock = clock.Real{}
	b.GeneratedAt = clk.Now().UTC().Format(time.RFC3339)
}

// Record is one benchmark result line.
type Record struct {
	// Name is the benchmark name including the -P GOMAXPROCS suffix.
	Name string `json:"name"`
	// Pkg is the import path of the package section the record appeared
	// under (the most recent "pkg:" header line). Multi-package runs like
	// `go test -bench . ./internal/obs/...` emit one header block per
	// package; without per-record attribution the records would be
	// indistinguishable across packages in the JSON.
	Pkg string `json:"pkg,omitempty"`
	// Iterations is b.N for the recorded run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value (ns/op, B/op, allocs/op, custom units).
	Metrics map[string]float64 `json:"metrics"`
	// Raw is the verbatim result line, for benchstat reconstruction.
	Raw string `json:"raw"`
}

func main() {
	out := flag.String("o", "", "write JSON to this file instead of stdout")
	restore := flag.String("restore", "", "read a baseline JSON file and print the original benchmark text")
	speedup := flag.String("speedup", "", "read a baseline JSON file and print each record's nodes/s relative to the serial record")
	compare := flag.Bool("compare", false, "compare two baseline JSON files (old new): print old/new/delta per metric")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two baseline files (old new)")
			os.Exit(1)
		}
		if err := compareFiles(flag.Arg(0), flag.Arg(1), os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if *restore != "" {
		if err := restoreText(*restore, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if *speedup != "" {
		if err := speedupTable(*speedup, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	b, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	provenance(b)
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(b); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse consumes `go test -bench` output. Header lines ("goos: linux")
// land in Env; "Benchmark..." lines become Records; everything else (PASS,
// ok, test logs) is ignored.
func parse(r io.Reader) (*Baseline, error) {
	b := &Baseline{Env: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		if rec, ok := parseResultLine(line); ok {
			rec.Pkg = pkg
			b.Benchmarks = append(b.Benchmarks, rec)
			continue
		}
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				b.Env[key] = v
				if key == "pkg" {
					pkg = v
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(b.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found in input")
	}
	return b, nil
}

// parseResultLine parses "BenchmarkX-8   100   123 ns/op   4 B/op ..." —
// the name, the iteration count, then (value, unit) pairs.
func parseResultLine(line string) (Record, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Record{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Record{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Record{}, false
	}
	rec := Record{
		Name:       fields[0],
		Iterations: iters,
		Metrics:    map[string]float64{},
		Raw:        line,
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Record{}, false
		}
		rec.Metrics[fields[i+1]] = v
	}
	return rec, true
}

// speedupTable prints every record carrying a nodes/s metric as a ratio
// against the "/serial" record of the same benchmark — the scaling view of
// BENCH_solver.json (see BenchmarkSolverScaling).
func speedupTable(path string, w io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return err
	}
	// The reference throughput is the record whose name's last path
	// segment starts with "serial" (the -P GOMAXPROCS suffix follows it).
	baseline := 0.0
	for _, rec := range b.Benchmarks {
		if _, ok := rec.Metrics["nodes/s"]; !ok {
			continue
		}
		seg := rec.Name[strings.LastIndexByte(rec.Name, '/')+1:]
		if strings.HasPrefix(seg, "serial") {
			baseline = rec.Metrics["nodes/s"]
			break
		}
	}
	if baseline <= 0 {
		return fmt.Errorf("no serial nodes/s record in %s", path)
	}
	printed := 0
	for _, rec := range b.Benchmarks {
		v, ok := rec.Metrics["nodes/s"]
		if !ok {
			continue
		}
		if _, err := fmt.Fprintf(w, "%-50s %12.0f nodes/s %8.2fx\n", rec.Name, v, v/baseline); err != nil {
			return err
		}
		printed++
	}
	if printed == 0 {
		return fmt.Errorf("no nodes/s records in %s", path)
	}
	return nil
}

// compareFiles diffs two baselines: for every benchmark present in both
// (matched on Pkg+Name), every metric present in both is printed as
// old → new with the absolute and relative delta. Benchmarks or metrics
// present in only one file are listed, not silently dropped. This is the
// quality-tracking view of BENCH_online.json: the stranded-power gap-pp
// row shows whether a change moved the online policy closer to or
// further from the FlexOffline optimum.
func compareFiles(oldPath, newPath string, w io.Writer) error {
	load := func(path string) (*Baseline, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var b Baseline
		if err := json.Unmarshal(data, &b); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return &b, nil
	}
	oldB, err := load(oldPath)
	if err != nil {
		return err
	}
	newB, err := load(newPath)
	if err != nil {
		return err
	}
	// Lead with both files' provenance so a diff is readable as "commit X
	// at T1 vs commit Y at T2", not just two anonymous file names.
	for _, side := range []struct {
		path string
		b    *Baseline
	}{{oldPath, oldB}, {newPath, newB}} {
		line := side.path
		if side.b.Commit != "" {
			line += " commit=" + side.b.Commit
		}
		if side.b.GeneratedAt != "" {
			line += " generated=" + side.b.GeneratedAt
		}
		fmt.Fprintln(w, line)
	}
	key := func(r Record) string { return r.Pkg + " " + r.Name }
	oldByKey := map[string]Record{}
	for _, r := range oldB.Benchmarks {
		oldByKey[key(r)] = r
	}
	matched := map[string]bool{}
	for _, nr := range newB.Benchmarks {
		or, ok := oldByKey[key(nr)]
		if !ok {
			fmt.Fprintf(w, "%-50s only in %s\n", nr.Name, newPath)
			continue
		}
		matched[key(nr)] = true
		units := make([]string, 0, len(or.Metrics))
		for unit := range or.Metrics {
			units = append(units, unit)
		}
		sort.Strings(units)
		for _, unit := range units {
			ov := or.Metrics[unit]
			nv, ok := nr.Metrics[unit]
			if !ok {
				fmt.Fprintf(w, "%-50s %-14s only in %s\n", nr.Name, unit, oldPath)
				continue
			}
			rel := ""
			if math.Abs(ov) > 1e-12 {
				rel = fmt.Sprintf(" (%+.1f%%)", (nv-ov)/ov*100)
			}
			fmt.Fprintf(w, "%-50s %-14s %14.4g -> %14.4g  %+.4g%s\n",
				nr.Name, unit, ov, nv, nv-ov, rel)
		}
	}
	for _, or := range oldB.Benchmarks {
		if !matched[key(or)] {
			fmt.Fprintf(w, "%-50s only in %s\n", or.Name, oldPath)
		}
	}
	return nil
}

// restoreText re-emits the benchmark text benchstat consumes.
func restoreText(path string, w io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return err
	}
	// Legacy single-package baselines carry no per-record Pkg; restore the
	// original single header block.
	multi := false
	for _, rec := range b.Benchmarks {
		if rec.Pkg != "" {
			multi = true
			break
		}
	}
	if !multi {
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := b.Env[key]; ok {
				if _, err := fmt.Fprintf(w, "%s: %s\n", key, v); err != nil {
					return err
				}
			}
		}
		for _, rec := range b.Benchmarks {
			if _, err := fmt.Fprintln(w, rec.Raw); err != nil {
				return err
			}
		}
		return nil
	}
	// Multi-package baselines: goos/goarch once, then a pkg/cpu header per
	// package section, matching `go test -bench` output across packages.
	for _, key := range []string{"goos", "goarch"} {
		if v, ok := b.Env[key]; ok {
			if _, err := fmt.Fprintf(w, "%s: %s\n", key, v); err != nil {
				return err
			}
		}
	}
	cur := ""
	for _, rec := range b.Benchmarks {
		if rec.Pkg != cur {
			cur = rec.Pkg
			if _, err := fmt.Fprintf(w, "pkg: %s\n", cur); err != nil {
				return err
			}
			if v, ok := b.Env["cpu"]; ok {
				if _, err := fmt.Fprintf(w, "cpu: %s\n", v); err != nil {
					return err
				}
			}
		}
		if _, err := fmt.Fprintln(w, rec.Raw); err != nil {
			return err
		}
	}
	return nil
}
