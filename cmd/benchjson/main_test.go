package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const sample = `goos: linux
goarch: amd64
pkg: flex
cpu: Intel(R) Xeon(R)
BenchmarkFigure6_UPSToleranceCurve-8   	     100	     11917 ns/op	     432 B/op	       9 allocs/op
BenchmarkFigure9_StrandedPower-8       	       1	1234567890 ns/op	       3.210 stranded_pct
PASS
ok  	flex	12.345s
`

func TestParseAndRestoreRoundTrip(t *testing.T) {
	b, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if b.Env["goos"] != "linux" || b.Env["pkg"] != "flex" {
		t.Errorf("env parsed wrong: %v", b.Env)
	}
	if len(b.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(b.Benchmarks))
	}
	r0 := b.Benchmarks[0]
	if r0.Name != "BenchmarkFigure6_UPSToleranceCurve-8" || r0.Iterations != 100 {
		t.Errorf("record 0: %+v", r0)
	}
	if r0.Metrics["ns/op"] != 11917 || r0.Metrics["allocs/op"] != 9 {
		t.Errorf("record 0 metrics: %v", r0.Metrics)
	}
	if b.Benchmarks[1].Metrics["stranded_pct"] != 3.210 {
		t.Errorf("custom unit lost: %v", b.Benchmarks[1].Metrics)
	}

	// Restore must reproduce the header and raw result lines verbatim.
	path := filepath.Join(t.TempDir(), "baseline.json")
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := restoreText(path, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"goos: linux",
		"BenchmarkFigure6_UPSToleranceCurve-8   \t     100\t     11917 ns/op\t     432 B/op\t       9 allocs/op",
		"stranded_pct",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("restored text missing %q:\n%s", want, out.String())
		}
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok flex 1s\n")); err == nil {
		t.Fatal("expected error for input without benchmark lines")
	}
}

func TestParseIgnoresMalformedLines(t *testing.T) {
	in := sample + "BenchmarkBroken-8 notanumber ns/op\n"
	b, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Benchmarks) != 2 {
		t.Fatalf("malformed line was parsed: %d records", len(b.Benchmarks))
	}
}

const multiPkgSample = `goos: linux
goarch: amd64
pkg: flex/internal/obs/tsdb
cpu: Intel(R) Xeon(R)
BenchmarkAppend-8          	30000000	        39.9 ns/op	       0 B/op	       0 allocs/op
BenchmarkQueryRaw-8        	  500000	      2100 ns/op
PASS
ok  	flex/internal/obs/tsdb	1.234s
goos: linux
goarch: amd64
pkg: flex/internal/obs/slo
cpu: Intel(R) Xeon(R)
BenchmarkAuditTick-8       	  100000	     10500 ns/op
PASS
ok  	flex/internal/obs/slo	2.345s
`

// TestParseMultiPackage feeds output from a multi-package `go test -bench`
// run (one header block per package): each record must be attributed to the
// package section it appeared under, and -restore must re-emit one pkg
// header per section so benchstat sees distinct packages.
func TestParseMultiPackage(t *testing.T) {
	b, err := parse(strings.NewReader(multiPkgSample))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(b.Benchmarks))
	}
	wantPkg := []string{
		"flex/internal/obs/tsdb",
		"flex/internal/obs/tsdb",
		"flex/internal/obs/slo",
	}
	for i, rec := range b.Benchmarks {
		if rec.Pkg != wantPkg[i] {
			t.Errorf("record %d (%s): pkg %q, want %q", i, rec.Name, rec.Pkg, wantPkg[i])
		}
	}

	path := filepath.Join(t.TempDir(), "multi.json")
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := restoreText(path, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if n := strings.Count(got, "pkg: "); n != 2 {
		t.Errorf("restored text has %d pkg headers, want 2:\n%s", n, got)
	}
	tsdbIdx := strings.Index(got, "pkg: flex/internal/obs/tsdb")
	sloIdx := strings.Index(got, "pkg: flex/internal/obs/slo")
	tickIdx := strings.Index(got, "BenchmarkAuditTick")
	if tsdbIdx < 0 || sloIdx < 0 || tickIdx < 0 {
		t.Fatalf("restored text missing sections:\n%s", got)
	}
	if !(tsdbIdx < sloIdx && sloIdx < tickIdx) {
		t.Errorf("restored sections out of order (tsdb@%d slo@%d tick@%d):\n%s", tsdbIdx, sloIdx, tickIdx, got)
	}
}

const solverSample = `goos: linux
pkg: flex
BenchmarkSolverScaling/serial-8      	       1	   2363996 ns/op	      4231 nodes/s
BenchmarkSolverScaling/workers=1-8   	       1	    338744 ns/op	      8867 nodes/s
BenchmarkSolverScaling/workers=4-8   	       1	    306173 ns/op	      9807 nodes/s
PASS
`

func TestSpeedupTable(t *testing.T) {
	b, err := parse(strings.NewReader(solverSample))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "solver.json")
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := speedupTable(path, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "1.00x") {
		t.Errorf("serial row not normalized to 1.00x:\n%s", got)
	}
	if !strings.Contains(got, "2.32x") {
		t.Errorf("workers=4 speedup missing (want 9807/4231 = 2.32x):\n%s", got)
	}
	if n := strings.Count(got, "nodes/s"); n != 3 {
		t.Errorf("printed %d rows, want 3:\n%s", n, got)
	}
}

const onlineOld = `goos: linux
pkg: flex/internal/placement/online
BenchmarkOnlinePlacement/admit-8          2000	 19042 ns/op	 52515 decisions/s	 0 allocs/op
BenchmarkOnlinePlacement/stranded-gap-8   2000	259042 ns/op	 7.750 gap-pp
PASS
`

const onlineNew = `goos: linux
pkg: flex/internal/placement/online
BenchmarkOnlinePlacement/admit-8          2000	 15000 ns/op	 60000 decisions/s	 0 allocs/op
BenchmarkOnlinePlacement/stranded-gap-8   2000	250000 ns/op	 5.500 gap-pp
BenchmarkOnlinePlacement/extra-8          2000	  1000 ns/op
PASS
`

// TestCompareFiles: the -compare view diffs every shared metric of every
// shared benchmark and reports one-sided records instead of dropping
// them — the stranded-power gap-pp row of BENCH_online.json is the
// motivating use.
func TestCompareFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name, text string) string {
		b, err := parse(strings.NewReader(text))
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	oldPath := write("old.json", onlineOld)
	newPath := write("new.json", onlineNew)
	var out bytes.Buffer
	if err := compareFiles(oldPath, newPath, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"gap-pp",
		"-2.25",    // 5.5 - 7.75 gap-pp delta
		"+7485",    // 60000 - 52515 decisions/s delta
		"(-29.0%)", // gap-pp relative change
		"only in",  // the one-sided extra-8 record
	} {
		if !strings.Contains(got, want) {
			t.Errorf("compare output missing %q:\n%s", want, got)
		}
	}
}

func TestCompareFilesMissing(t *testing.T) {
	if err := compareFiles("/nonexistent/a.json", "/nonexistent/b.json", io.Discard); err == nil {
		t.Fatal("want error for missing files")
	}
}

func TestSpeedupTableNoSerial(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "empty.json")
	data, err := json.Marshal(&Baseline{Env: map[string]string{}, Benchmarks: []Record{
		{Name: "BenchmarkX-8", Iterations: 1, Metrics: map[string]float64{"ns/op": 5}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := speedupTable(path, io.Discard); err == nil {
		t.Fatal("want error when no serial nodes/s record exists")
	}
}

// TestProvenanceStamp checks that a freshly parsed baseline is stamped
// with a well-formed UTC capture time (and, inside a git checkout, the
// HEAD commit), and that -compare leads with both files' provenance.
func TestProvenanceStamp(t *testing.T) {
	b, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	provenance(b)
	if b.GeneratedAt == "" {
		t.Fatal("provenance left GeneratedAt empty")
	}
	if _, err := time.Parse(time.RFC3339, b.GeneratedAt); err != nil {
		t.Fatalf("GeneratedAt %q is not RFC 3339: %v", b.GeneratedAt, err)
	}

	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	b.Commit = "aaaa"
	writeBaseline(t, oldPath, b)
	b.Commit = "bbbb"
	writeBaseline(t, newPath, b)

	var out bytes.Buffer
	if err := compareFiles(oldPath, newPath, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		oldPath + " commit=aaaa generated=" + b.GeneratedAt,
		newPath + " commit=bbbb generated=" + b.GeneratedAt,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("compare output missing provenance header %q:\n%s", want, got)
		}
	}
}

func writeBaseline(t *testing.T, path string, b *Baseline) {
	t.Helper()
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}
