// Package flex is an open-source reproduction of "Flex: High-Availability
// Datacenters With Zero Reserved Power" (Zhang et al., ISCA 2021).
//
// Flex lets a datacenter allocate all of the power normally reserved for
// failover in an xN/y distributed-redundant design (e.g. 33% more servers
// for 4N/3) while preserving workload availability:
//
//   - Flex-Offline (the Place* functions and Policy implementations)
//     places server deployments so that, for every single-UPS failure and
//     even at 100% utilization, shutting down software-redundant racks and
//     throttling cap-able racks to their flex power brings every surviving
//     UPS back within its rating — while minimizing stranded power.
//   - Flex-Online (Controller, Plan) watches a redundant power-telemetry
//     pipeline for UPS overdraw and sheds the minimum-impact set of racks
//     within the ~10-second overload tolerance window, guided by
//     per-workload impact functions.
//
// The package is a facade over the implementation in internal/…; it
// re-exports the types and entry points a downstream user needs: topology
// modelling, demand-trace generation, placement policies and metrics, the
// online controller, the telemetry pipeline, the §V-B/§V-C experiment
// harnesses, and the §III/§I analytic models.
package flex

import (
	"context"
	"io"
	"math/rand"

	"flex/internal/controller"
	"flex/internal/cooling"
	"flex/internal/cost"
	"flex/internal/emu"
	"flex/internal/feasibility"
	"flex/internal/impact"
	"flex/internal/lp"
	"flex/internal/milp"
	"flex/internal/obs/recorder"
	"flex/internal/placement"
	"flex/internal/power"
	"flex/internal/replay"
	"flex/internal/sim"
	"flex/internal/telemetry"
	"flex/internal/workload"
)

// Power and topology types.
type (
	// Watts is electrical power in watts.
	Watts = power.Watts
	// Redundancy is an xN/y distributed-redundancy design.
	Redundancy = power.Redundancy
	// Topology is a room's electrical topology (UPSes and PDU-pairs).
	Topology = power.Topology
	// UPSID identifies a UPS within a topology.
	UPSID = power.UPSID
	// PDUPairID identifies a PDU-pair within a topology.
	PDUPairID = power.PDUPairID
	// PairLoad is power per PDU-pair.
	PairLoad = power.PairLoad
	// TripCurve is a UPS overload tolerance curve (Figure 6).
	TripCurve = power.TripCurve
	// RoomConfig configures NewTopology.
	RoomConfig = power.RoomConfig
)

// Power unit constants.
const (
	KW = power.KW
	MW = power.MW
)

// FlexLatencyBudget is the 10-second end-to-end deadline for Flex-Online.
const FlexLatencyBudget = power.FlexLatencyBudget

// NewTopology builds an xN/y room topology (see power.NewRoom).
//
// The zero RoomConfig is invalid (capacity and pair count must be set);
// prefer NewRedundantTopology, which starts from the paper's defaults.
func NewTopology(cfg RoomConfig) (*Topology, error) { return power.NewRoom(cfg) }

// TopologyOption customizes NewRedundantTopology.
type TopologyOption func(*RoomConfig)

// WithUPSCapacity sets each UPS's rated capacity. The default is the
// paper's 2.4 MW evaluation UPS.
func WithUPSCapacity(w Watts) TopologyOption {
	return func(c *RoomConfig) { c.UPSCapacity = w }
}

// WithPairsPerCombination sets how many PDU-pairs to instantiate per
// unordered UPS combination. The default is the paper's 3 (18 pairs for
// 4N/3).
func WithPairsPerCombination(n int) TopologyOption {
	return func(c *RoomConfig) { c.PairsPerCombination = n }
}

// NewRedundantTopology builds an xN/y distributed-redundant topology from
// the design plus options, defaulting the remaining knobs to the paper's
// §V-A room (2.4 MW UPSes, 3 PDU-pairs per combination). Unlike the bare
// RoomConfig accepted by NewTopology, every combination of options yields
// a fully specified configuration.
func NewRedundantTopology(design Redundancy, opts ...TopologyOption) (*Topology, error) {
	cfg := RoomConfig{Design: design, UPSCapacity: 2.4 * MW, PairsPerCombination: 3}
	for _, o := range opts {
		o(&cfg)
	}
	return power.NewRoom(cfg)
}

// EndOfLifeTripCurve is the conservative UPS tolerance curve Flex designs
// against (10 s at the worst-case 133% failover load).
func EndOfLifeTripCurve() TripCurve { return power.EndOfLifeTripCurve }

// BeginOfLifeTripCurve is the fresh-battery tolerance curve.
func BeginOfLifeTripCurve() TripCurve { return power.BeginOfLifeTripCurve }

// Workload types.
type (
	// Category classifies a workload's tolerance to corrective actions.
	Category = workload.Category
	// Deployment is one unbreakable server deployment request.
	Deployment = workload.Deployment
	// TraceConfig parameterizes the synthetic demand generator.
	TraceConfig = workload.TraceConfig
	// RegionMix is a per-region workload distribution (Figure 3).
	RegionMix = workload.RegionMix
)

// Workload categories.
const (
	SoftwareRedundant      = workload.SoftwareRedundant
	NonRedundantCapable    = workload.NonRedundantCapable
	NonRedundantNonCapable = workload.NonRedundantNonCapable
)

// DefaultTraceConfig returns the paper's §V-A demand configuration for a
// room with the given provisioned power.
func DefaultTraceConfig(provisioned Watts) TraceConfig {
	return workload.DefaultTraceConfig(provisioned)
}

// GenerateTrace produces a synthetic short-term-demand trace.
func GenerateTrace(cfg TraceConfig, seed int64) ([]Deployment, error) {
	return workload.GenerateTrace(cfg, rand.New(rand.NewSource(seed)))
}

// ShuffleTrace permutes a trace (the paper evaluates 10 shuffles).
func ShuffleTrace(trace []Deployment, seed int64) []Deployment {
	return workload.Shuffle(trace, rand.New(rand.NewSource(seed)))
}

// Figure3Regions returns the synthetic per-region workload mix whose mean
// matches the paper's published averages.
func Figure3Regions() []RegionMix { return workload.Figure3Regions() }

// WriteTrace / ReadTrace serialize demand traces as JSON.
func WriteTrace(w io.Writer, trace []Deployment) error { return workload.WriteTrace(w, trace) }
func ReadTrace(r io.Reader) ([]Deployment, error)      { return workload.ReadTrace(r) }

// Placement types and policies.
type (
	// Room couples a topology with rack space (and optional cooling).
	Room = placement.Room
	// Placement is a policy's result with its safety/metric methods.
	Placement = placement.Placement
	// Policy places a demand trace into a room.
	Policy = placement.Policy
	// FlexOffline is the paper's ILP placement policy.
	FlexOffline = placement.FlexOffline
	// RandomPolicy places on a uniformly random feasible PDU-pair.
	RandomPolicy = placement.Random
	// RoundRobinPolicy cycles PDU-pairs with one shared pointer.
	RoundRobinPolicy = placement.RoundRobin
	// BalancedRoundRobinPolicy balances each category across PDU-pairs.
	BalancedRoundRobinPolicy = placement.BalancedRoundRobin
	// FirstFitPolicy concentrates load (the paper's counter-example).
	FirstFitPolicy = placement.FirstFit
	// Site routes one demand stream across several rooms.
	Site = placement.Site
	// SitePlacement is a Site placement outcome.
	SitePlacement = placement.SitePlacement
)

// NewUniformSite builds a site of n identical paper rooms.
func NewUniformSite(name string, n int) (*Site, error) {
	return placement.NewUniformSite(name, n)
}

// NewRoom builds a placement room with uniform slots per PDU-pair.
func NewRoom(topo *Topology, slotsPerPair int) (*Room, error) {
	return placement.NewRoom(topo, slotsPerPair)
}

// PartialReserveRoom builds a room allocating only a fraction of the
// reserved power (§VI: Microsoft's first production deployments use 42%,
// where throttling alone covers every failover).
func PartialReserveRoom(topo *Topology, slotsPerPair int, reserveUtilization float64) (*Room, error) {
	return placement.PartialReserveRoom(topo, slotsPerPair, reserveUtilization)
}

// PaperRoom is the paper's §V-A evaluation room (9.6MW, 4N/3, 18 pairs).
func PaperRoom() *Room { return placement.PaperRoom() }

// EmulationRoom is the paper's §V-C emulation room (4.8MW, 360 racks).
func EmulationRoom() *Room { return placement.EmulationRoom() }

// FlexOfflineShort/Long/Oracle are the paper's three batching horizons.
func FlexOfflineShort() FlexOffline  { return placement.FlexOfflineShort() }
func FlexOfflineLong() FlexOffline   { return placement.FlexOfflineLong() }
func FlexOfflineOracle() FlexOffline { return placement.FlexOfflineOracle() }

// MILP solver surface — the engine behind Flex-Offline's batch ILP,
// exposed for users who want to solve their own placement variants or
// tune the search.
type (
	// MILPProblem is a linear program plus integrality requirements.
	MILPProblem = milp.Problem
	// SolveOptions tunes the parallel branch-and-bound search (workers,
	// determinism, limits, warm starts).
	SolveOptions = milp.Options
	// SolveResult is one solve's outcome, including why a truncated
	// search stopped.
	SolveResult = milp.Result
	// SolveStatus classifies a solve outcome.
	SolveStatus = milp.Status
	// StopReason says why a search stopped before proving optimality.
	StopReason = milp.StopReason
	// LinearProblem is a linear program over nonnegative variables.
	LinearProblem = lp.Problem
	// LinearConstraint is one row of a LinearProblem.
	LinearConstraint = lp.Constraint
	// ConstraintSense relates a constraint row to its right-hand side.
	ConstraintSense = lp.Sense
)

// Solve statuses.
const (
	SolveOptimal    = milp.Optimal
	SolveFeasible   = milp.Feasible
	SolveInfeasible = milp.Infeasible
	SolveUnbounded  = milp.Unbounded
)

// Stop reasons for truncated searches.
const (
	StopNone      = milp.StopNone
	StopDeadline  = milp.StopDeadline
	StopNodeLimit = milp.StopNodeLimit
	StopCanceled  = milp.StopCanceled
)

// Constraint senses.
const (
	LE = lp.LE
	GE = lp.GE
	EQ = lp.EQ
)

// SolveMILP runs the parallel branch-and-bound solver under ctx: a
// context deadline bounds the search (Stop == StopDeadline), and
// cancellation returns the best incumbent with context.Cause(ctx).
func SolveMILP(ctx context.Context, p *MILPProblem, opts SolveOptions) (SolveResult, error) {
	return milp.SolveContext(ctx, p, opts)
}

// BatchPlacementILP builds the Flex-Offline batch ILP (Eq. 1–5) for
// placing the batch into the room — the exact problem FlexOffline solves
// per flush, useful as a realistic solver workload or a starting point
// for custom placement formulations.
func BatchPlacementILP(room *Room, batch []Deployment) *MILPProblem {
	return placement.BatchILP(room, batch)
}

// Impact functions.
type (
	// ImpactFunction maps affected-rack fraction to perceived impact.
	ImpactFunction = impact.Function
	// ImpactPoint is a vertex of a piecewise-linear impact function.
	ImpactPoint = impact.Point
	// Scenario assigns impact functions to workloads/categories.
	Scenario = impact.Scenario
)

// NewImpactFunction builds a piecewise-linear impact function.
func NewImpactFunction(name string, points []ImpactPoint) (ImpactFunction, error) {
	return impact.New(name, points)
}

// The Figure 11 scenario library and the paper's default behaviour.
func ScenarioExtreme1() Scenario   { return impact.Extreme1() }
func ScenarioExtreme2() Scenario   { return impact.Extreme2() }
func ScenarioRealistic1() Scenario { return impact.Realistic1() }
func ScenarioRealistic2() Scenario { return impact.Realistic2() }
func ScenarioDefault() Scenario    { return impact.Default() }

// Figure11Scenarios returns all four evaluation scenarios.
func Figure11Scenarios() []Scenario { return impact.Figure11Scenarios() }

// Figure8A/B/C are the paper's three production impact-function examples:
// the cap-able VM service, a software-redundant stateless service, and a
// software-redundant stateful service with growth buffer and critical
// management racks.
func Figure8A() ImpactFunction { return impact.Figure8A() }
func Figure8B() ImpactFunction { return impact.Figure8B() }
func Figure8C() ImpactFunction { return impact.Figure8C() }

// Flex-Online types.
type (
	// ManagedRack is a rack under Flex-Online control.
	ManagedRack = controller.ManagedRack
	// PlannedAction is one corrective action chosen by Algorithm 1.
	PlannedAction = controller.PlannedAction
	// PlanInput is the snapshot Algorithm 1 plans from.
	PlanInput = controller.PlanInput
	// Controller is one Flex-Online primary.
	Controller = controller.Controller
	// ControllerConfig assembles a Controller.
	ControllerConfig = controller.Config
)

// Action kinds.
const (
	ActionShutdown = controller.Shutdown
	ActionThrottle = controller.Throttle
)

// PlanActions runs the paper's Algorithm 1 on a power snapshot.
func PlanActions(in PlanInput) (actions []PlannedAction, insufficient bool, err error) {
	return controller.Plan(in)
}

// PlanActionsContext is PlanActions with a cancellation point per greedy
// iteration; on expiry it returns the truncated plan with
// context.Cause(ctx).
func PlanActionsContext(ctx context.Context, in PlanInput) (actions []PlannedAction, insufficient bool, err error) {
	return controller.PlanContext(ctx, in)
}

// NewController creates a Flex-Online controller primary.
func NewController(cfg ControllerConfig) *Controller { return controller.New(cfg) }

// Telemetry types (paper §IV-C, Figure 7).
type (
	// Sample is one published power measurement.
	Sample = telemetry.Sample
	// PowerSource supplies ground-truth power to simulated meters.
	PowerSource = telemetry.PowerSource
	// Meter is a pull-based power meter.
	Meter = telemetry.Meter
	// LogicalMeter is a median-consensus meter over redundant physical
	// meters.
	LogicalMeter = telemetry.LogicalMeter
	// Broker is an in-process pub/sub system.
	Broker = telemetry.Broker
	// BrokerServer exposes a Broker over TCP.
	BrokerServer = telemetry.BrokerServer
	// RemotePublisher publishes to a BrokerServer over TCP.
	RemotePublisher = telemetry.RemotePublisher
	// Poller reads logical meters and publishes samples.
	Poller = telemetry.Poller
	// LatestPower is the deduplicated freshest-power view controllers
	// read.
	LatestPower = telemetry.LatestPower
	// EWMAEstimator is the §IV-D time-series rack-power estimator.
	EWMAEstimator = telemetry.EWMAEstimator
	// Pipeline is a fully assembled redundant telemetry system.
	Pipeline = telemetry.Pipeline
	// PipelineConfig configures NewPipeline.
	PipelineConfig = telemetry.PipelineConfig
)

// Telemetry topics.
const (
	TopicUPS  = telemetry.TopicUPS
	TopicRack = telemetry.TopicRack
)

// NewPipeline assembles a room's redundant telemetry pipeline.
func NewPipeline(cfg PipelineConfig) *Pipeline { return telemetry.NewPipeline(cfg) }

// NewLatestPower returns an empty power view.
func NewLatestPower() *LatestPower { return telemetry.NewLatestPower() }

// NewEWMAEstimator creates a time-series power estimator.
func NewEWMAEstimator(alpha float64) *EWMAEstimator { return telemetry.NewEWMAEstimator(alpha) }

// Experiment harnesses.
type (
	// RackInstance is one expanded physical rack of a placement.
	RackInstance = sim.Rack
	// Figure12Config drives the §V-B snapshot simulation.
	Figure12Config = sim.Figure12Config
	// Figure12Point is one utilization point of Figure 12.
	Figure12Point = sim.Figure12Point
	// EmulationConfig drives the §V-C end-to-end emulation.
	EmulationConfig = emu.Config
	// EmulationResult summarizes an emulation run.
	EmulationResult = emu.Result
)

// ExpandRacks explodes a placement into physical racks.
func ExpandRacks(pl *Placement) []RackInstance { return sim.ExpandRacks(pl) }

// ManagedRacks converts racks to the controller representation.
func ManagedRacks(racks []RackInstance) []ManagedRack { return sim.ManagedRacks(racks) }

// RunFigure12 produces the Figure 12 series for one scenario.
func RunFigure12(cfg Figure12Config) ([]Figure12Point, error) { return sim.RunFigure12(cfg) }

// RunEmulation executes the Figure 13 end-to-end emulation without an
// external cancellation point; prefer RunEmulationContext.
func RunEmulation(cfg EmulationConfig) (*EmulationResult, error) {
	//flexlint:ignore ctxflow deprecated ctx-less facade shorthand; live callers use RunEmulationContext
	return emu.Run(context.Background(), cfg)
}

// RunEmulationContext executes the Figure 13 end-to-end emulation. ctx
// bounds the offline placement solve and every controller planning pass.
func RunEmulationContext(ctx context.Context, cfg EmulationConfig) (*EmulationResult, error) {
	return emu.Run(ctx, cfg)
}

// Flight recorder: the causally-ordered event log every subsystem can
// emit into (telemetry, consensus, planning, actuation), and the
// deterministic episode replay built on it.
type (
	// FlightRecorder is the bounded in-memory event ring (plus optional
	// JSONL sink). Hand one to EmulationConfig.Recorder, PipelineConfig.
	// Recorder, or the controller/rackmgr configs.
	FlightRecorder = recorder.Recorder
	// FlightEvent is one recorded event.
	FlightEvent = recorder.Event
	// FlightEventType enumerates the event taxonomy.
	FlightEventType = recorder.Type
	// FlightFilter selects events (episode, type, actor, seq range …).
	FlightFilter = recorder.Filter
	// FlightSink persists events as length-prefixed JSONL.
	FlightSink = recorder.Sink
	// ReplayHeader is the episode-log preamble pinning room, scenario and
	// managed racks.
	ReplayHeader = replay.Header
	// ReplayReport is the recorded-vs-replayed decision diff.
	ReplayReport = replay.Report
)

// NewFlightRecorder creates a flight recorder retaining the last capacity
// events (default 8192 when capacity <= 0).
func NewFlightRecorder(capacity int) *FlightRecorder { return recorder.New(capacity) }

// NewFlightSink wraps w as a length-prefixed JSONL event sink.
func NewFlightSink(w io.Writer) *FlightSink { return recorder.NewSink(w) }

// ReadFlightEvents parses a length-prefixed JSONL event log.
func ReadFlightEvents(r io.Reader) ([]FlightEvent, error) { return recorder.ReadEvents(r) }

// ReplayEvents re-drives every recorded planning pass of an episode log
// and diffs the replayed decisions against the recorded ones, without an
// external cancellation point; prefer ReplayEventsContext.
func ReplayEvents(events []FlightEvent) (*ReplayReport, error) {
	//flexlint:ignore ctxflow deprecated ctx-less facade shorthand; live callers use ReplayEventsContext
	return replay.Replay(context.Background(), events)
}

// ReplayEventsContext re-drives every recorded planning pass of an
// episode log under ctx and diffs the replayed decisions against the
// recorded ones.
func ReplayEventsContext(ctx context.Context, events []FlightEvent) (*ReplayReport, error) {
	return replay.Replay(ctx, events)
}

// Analyses.
type (
	// FeasibilityParams configures the §III analysis.
	FeasibilityParams = feasibility.Params
	// FeasibilityAnalysis is its result.
	FeasibilityAnalysis = feasibility.Analysis
	// Savings is the §I construction-cost result.
	Savings = cost.Savings
	// DesignComparison contrasts redundancy designs.
	DesignComparison = cost.DesignComparison
)

// MaintenanceWindow is a low-utilization stretch suited to planned
// maintenance (§III).
type MaintenanceWindow = feasibility.MaintenanceWindow

// FindMaintenanceWindows scans an hourly utilization profile for windows
// where planned maintenance never engages Flex-Online.
func FindMaintenanceWindows(hourlyUtil []float64, minHours int, threshold float64) ([]MaintenanceWindow, error) {
	return feasibility.FindMaintenanceWindows(hourlyUtil, minHours, threshold)
}

// WeekProfile synthesizes the paper's weekday-peak/night-dip utilization
// profile for maintenance studies.
func WeekProfile(peak, nightDip float64) []float64 {
	return feasibility.WeekProfile(peak, nightDip)
}

// DefaultFeasibilityParams returns parameters calibrated to the paper's
// fleet statistics (1 h/yr unplanned, 40 h/yr planned, 65–80% peaks).
func DefaultFeasibilityParams() FeasibilityParams { return feasibility.DefaultParams() }

// AnalyzeFeasibility runs the §III joint-probability analysis.
func AnalyzeFeasibility(p FeasibilityParams) (FeasibilityAnalysis, error) {
	return feasibility.Analyze(p)
}

// ComputeSavings evaluates the §I zero-reserved-power economics.
func ComputeSavings(design Redundancy, sitePower Watts, dollarsPerWatt float64) (Savings, error) {
	return cost.Compute(design, sitePower, dollarsPerWatt)
}

// CompareDesigns evaluates reserved power and Flex gains across designs.
func CompareDesigns() []DesignComparison { return cost.CompareDesigns() }

// Cooling-redundancy types (§VI "Implications on cooling infrastructure").
type (
	// CoolingDomain is a set of racks sharing CRAH units.
	CoolingDomain = cooling.Domain
	// CoolingRack is a rack's airflow demand and mitigation options.
	CoolingRack = cooling.Rack
	// ThermalParams model temperature rise under an airflow deficit.
	ThermalParams = cooling.ThermalParams
	// CoolingPlan is a mitigation plan for a cooling-unit failure.
	CoolingPlan = cooling.PlanResult
)

// DefaultThermalParams returns a representative air-cooled room model.
func DefaultThermalParams() ThermalParams { return cooling.DefaultThermalParams() }

// PlanCoolingMitigation plans the response to losing cooling units:
// migrate software-redundant racks first, then throttle, then shut down —
// within the minutes-long thermal window (vs the 10s power budget).
func PlanCoolingMitigation(domains []CoolingDomain, racks []CoolingRack, failed cooling.DomainID, failedUnits int, params ThermalParams) (CoolingPlan, error) {
	return cooling.PlanMitigation(domains, racks, failed, failedUnits, params)
}

// ChargeModel prices the §VI financial incentives for flexible workloads.
type ChargeModel = cost.ChargeModel

// DefaultChargeModel returns a conservative §VI pricing parameterization.
func DefaultChargeModel() ChargeModel { return cost.DefaultChargeModel() }

// MonteCarloParams / MonteCarloResult drive the stochastic §III check.
type (
	MonteCarloParams = feasibility.MonteCarloParams
	MonteCarloResult = feasibility.MonteCarloResult
)

// DefaultMonteCarloParams mirrors the paper's fleet statistics.
func DefaultMonteCarloParams() MonteCarloParams { return feasibility.DefaultMonteCarloParams() }

// SimulateYears runs the Monte Carlo counterpart of AnalyzeFeasibility.
func SimulateYears(p MonteCarloParams) (MonteCarloResult, error) {
	return feasibility.SimulateYears(p)
}
