// Package flex is an open-source reproduction of "Flex: High-Availability
// Datacenters With Zero Reserved Power" (Zhang et al., ISCA 2021).
//
// Flex lets a datacenter allocate all of the power normally reserved for
// failover in an xN/y distributed-redundant design (e.g. 33% more servers
// for 4N/3) while preserving workload availability:
//
//   - Flex-Offline (the Place* functions and Policy implementations)
//     places server deployments so that, for every single-UPS failure and
//     even at 100% utilization, shutting down software-redundant racks and
//     throttling cap-able racks to their flex power brings every surviving
//     UPS back within its rating — while minimizing stranded power.
//   - Flex-Online (Controller, Plan) watches a redundant power-telemetry
//     pipeline for UPS overdraw and sheds the minimum-impact set of racks
//     within the ~10-second overload tolerance window, guided by
//     per-workload impact functions.
//   - The fleet layer (NewFleet) scales Flex-Online to many rooms: one
//     controller shard per UPS fault domain, batched telemetry ingest with
//     bounded drop-oldest queues, and a global aggregator folding shard
//     snapshots into fleet-wide stranded power and health.
//
// The package is a facade over the implementation in internal/…; it
// re-exports the types and entry points a downstream user needs, organized
// by theme:
//
//	flex_topology.go     power units, xN/y topologies, trip curves
//	flex_workload.go     workload categories and demand traces
//	flex_placement.go    rooms, placement policies, Flex-Offline
//	flex_solve.go        the MILP solver surface behind Flex-Offline
//	flex_impact.go       impact functions and the Figure 11 scenarios
//	flex_online.go       Flex-Online planning, controllers, actuation
//	flex_telemetry.go    the redundant power-telemetry pipeline
//	flex_fleet.go        the sharded multi-room fleet layer
//	flex_experiments.go  the §V-B/§V-C experiment harnesses
//	flex_recorder.go     flight recorder and deterministic replay
//	flex_analysis.go     the §III/§I/§VI analytic models
//
// Construction follows one convention throughout: a New* constructor
// taking the required collaborators plus With* functional options for the
// tunable knobs (NewRedundantTopology, NewPlacementRoom,
// NewOnlineController, NewFleet). Earlier positional constructors and
// ctx-less shorthands remain as thin deprecated wrappers — they keep
// compiling forever, but new code should prefer the options forms and the
// *Context variants.
package flex
