package flex

// Cross-module integration tests: the full Flex stack wired together the
// way production would run it — placement feeding the controller's rack
// inventory, telemetry feeding its views, the rack-manager fleet enforcing
// its actions — with failures injected at every layer.

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"flex/internal/clock"
	"flex/internal/controller"
	"flex/internal/power"
	"flex/internal/rackmgr"
	"flex/internal/sim"
	"flex/internal/telemetry"
	"flex/internal/workload"
)

// TestIntegrationPlacementSafetyUnderCascade places a full trace with
// every policy and proves, via the trip-curve cascade simulator, that the
// worst-case shaved load never produces an outage for any initial UPS
// failure — the paper's core safety claim.
func TestIntegrationPlacementSafetyUnderCascade(t *testing.T) {
	room := PaperRoom()
	trace, err := GenerateTrace(DefaultTraceConfig(room.Topo.ProvisionedPower()), 33)
	if err != nil {
		t.Fatal(err)
	}
	short := FlexOfflineShort()
	short.MaxNodes = 150
	for _, pol := range []Policy{RandomPolicy{Seed: 3}, BalancedRoundRobinPolicy{}, short} {
		pl, err := pol.Place(context.Background(), room, trace)
		if err != nil {
			t.Fatal(err)
		}
		capLoad := pl.CapPairLoad()
		for f := range room.Topo.UPSes {
			out := room.Topo.SimulateCascade(capLoad, UPSID(f), EndOfLifeTripCurve(), time.Hour)
			if out.Outage {
				t.Fatalf("%s: cascade after maximal shaving, failure of UPS %d", pol.Name(), f)
			}
		}
	}
}

// TestIntegrationAlgorithm1CoversEveryFailure verifies that, for a
// Flex-Offline placement at full allocation (the Eq. 4 worst case),
// Algorithm 1 finds a sufficient action set for every UPS failure — the
// offline/online contract.
func TestIntegrationAlgorithm1CoversEveryFailure(t *testing.T) {
	room := PaperRoom()
	trace, err := GenerateTrace(DefaultTraceConfig(room.Topo.ProvisionedPower()), 5)
	if err != nil {
		t.Fatal(err)
	}
	pol := FlexOfflineShort()
	pol.MaxNodes = 150
	pl, err := pol.Place(context.Background(), room, trace)
	if err != nil {
		t.Fatal(err)
	}
	racks := ExpandRacks(pl)
	managed := ManagedRacks(racks)
	// Worst case: every rack at allocated power (100% utilization).
	rackPower := make(map[string]Watts, len(racks))
	for _, r := range racks {
		rackPower[r.ID] = r.Allocated
	}
	load := sim.PairLoadFromRacks(room.Topo, racks, rackPower)
	for f := range room.Topo.UPSes {
		ups := room.Topo.FailoverLoads(load, UPSID(f))
		actions, insufficient, err := PlanActions(PlanInput{
			Topo: room.Topo, Racks: managed, UPSPower: ups,
			RackPower: rackPower,
			Inactive:  map[UPSID]bool{UPSID(f): true},
			Scenario:  ScenarioRealistic1(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if insufficient {
			t.Fatalf("failure of UPS %d: Algorithm 1 insufficient at 100%% utilization — Eq. 4 contract broken", f)
		}
		if len(actions) == 0 {
			t.Fatalf("failure of UPS %d: no actions at 100%% utilization", f)
		}
	}
}

// TestIntegrationTelemetryToActuation runs pipeline → views → controller →
// rack manager end to end with injected meter, poller, and broker faults,
// on a virtual clock.
func TestIntegrationTelemetryToActuation(t *testing.T) {
	topo, err := NewTopology(RoomConfig{
		Design: Redundancy{X: 4, Y: 3}, UPSCapacity: 100 * KW, PairsPerCombination: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// One SR and one cap-able rack per pair; ground truth driven below.
	type liveRack struct {
		m     ManagedRack
		power Watts
	}
	var racks []liveRack
	for _, p := range topo.Pairs {
		racks = append(racks,
			liveRack{m: ManagedRack{ID: "sr-" + p.Name, Workload: "search",
				Category: SoftwareRedundant, Pair: p.ID, Allocated: 33 * KW}},
			liveRack{m: ManagedRack{ID: "cap-" + p.Name, Workload: "vms",
				Category: NonRedundantCapable, Pair: p.ID, Allocated: 33 * KW, FlexPower: 28 * KW}},
		)
	}
	inactive := map[UPSID]bool{}
	truth := func(u int) Watts {
		var loads [4]Watts
		for _, r := range racks {
			pair := topo.Pairs[r.m.Pair]
			a, b := pair.UPSes[0], pair.UPSes[1]
			switch {
			case inactive[a] && inactive[b]:
			case inactive[a]:
				loads[b] += r.power
			case inactive[b]:
				loads[a] += r.power
			default:
				loads[a] += r.power / 2
				loads[b] += r.power / 2
			}
		}
		return loads[u]
	}

	clk := clock.NewVirtual(time.Unix(0, 0))
	upsSources := map[string]telemetry.PowerSource{}
	for u := range topo.UPSes {
		u := u
		upsSources[topo.UPSes[u].Name] = func() power.Watts { return truth(u) }
	}
	rackSources := map[string]telemetry.PowerSource{}
	for i := range racks {
		r := &racks[i]
		rackSources[r.m.ID] = func() power.Watts { return r.power }
	}
	pipe := telemetry.NewPipeline(telemetry.PipelineConfig{
		Clock: clk, UPSSources: upsSources, RackSources: rackSources, Seed: 2,
	})
	upsView := telemetry.NewLatestPower()
	rackView := telemetry.NewLatestPower()
	defer pipe.SubscribeAll(telemetry.TopicUPS, upsView)()
	defer pipe.SubscribeAll(telemetry.TopicRack, rackView)()

	ids := make([]string, len(racks))
	managed := make([]ManagedRack, len(racks))
	for i, r := range racks {
		ids[i] = r.m.ID
		managed[i] = r.m
	}
	mgr := rackmgr.NewManager(clk, ids)
	ctl := NewController(ControllerConfig{
		Name: "it", Clock: clk, Topo: topo, Racks: managed,
		UPSView: upsView, RackView: rackView, Actuator: mgr,
		Scenario: ScenarioRealistic1(), Buffer: KW,
	})

	// Inject faults across the pipeline: one meter misreads, one poller
	// and one broker are down. The stack must still work.
	pipe.UPSMeters[topo.UPSes[1].Name].Meters()[0].(*telemetry.SimMeter).SetOffset(50 * KW)
	pipe.PollerSet[0].SetDown(true)
	pipe.BrokerSet[0].SetDown(true)

	// Normal operation at ~72% utilization.
	for i := range racks {
		racks[i].power = Watts(0.72 * float64(racks[i].m.Allocated))
	}
	pump := func() {
		pipe.PollOnce()
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if _, _, ok := upsView.Get(topo.UPSes[3].Name); ok {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatal("telemetry never reached the view")
	}
	pump()
	if out := ctl.Step(); out.Overdraw {
		t.Fatalf("false overdraw at 72%% utilization: %+v", out)
	}

	// Fail UPS 0 at ~85% utilization.
	for i := range racks {
		racks[i].power = Watts(0.85 * float64(racks[i].m.Allocated))
	}
	inactive[0] = true
	clk.Advance(2 * time.Second)
	pipe.PollOnce()
	// Wait for the post-failover view.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if v, _, ok := upsView.Get(topo.UPSes[0].Name); ok && v < 5*KW {
			break
		}
		time.Sleep(time.Millisecond)
	}
	out := ctl.Step()
	if !out.Overdraw || out.Enforced == 0 {
		t.Fatalf("controller did not act on failover: %+v", out)
	}
	// Apply the actuation to the ground truth and verify survivors are
	// back under capacity.
	for i := range racks {
		st, cap, err := mgr.State(racks[i].m.ID)
		if err != nil {
			t.Fatal(err)
		}
		switch st {
		case rackmgr.Off:
			racks[i].power = 0
		case rackmgr.Throttled:
			if racks[i].power > cap {
				racks[i].power = cap
			}
		}
	}
	for u := 1; u < 4; u++ {
		if truth(u) > 100*KW {
			t.Fatalf("survivor %d still over capacity after enforcement: %v", u, truth(u))
		}
	}

	// Recovery: UPS back, load drops, controller restores.
	delete(inactive, 0)
	clk.Advance(2 * time.Second)
	pipe.PollOnce()
	deadline = time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if v, _, ok := upsView.Get(topo.UPSes[0].Name); ok && v > 5*KW {
			break
		}
		time.Sleep(time.Millisecond)
	}
	out = ctl.Step()
	if out.Restored == 0 {
		t.Fatalf("controller did not restore after recovery: %+v", out)
	}
}

// TestIntegrationWatchdogGuardsControllerActuation exercises the §VI
// loop: the watchdog flags a broken rack-manager path before the
// controller needs it.
func TestIntegrationWatchdogGuardsControllerActuation(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	mgr := rackmgr.NewManager(clk, []string{"r1", "r2"})
	w := rackmgr.NewWatchdog(mgr, clk, time.Minute)
	if len(w.SweepOnce()) != 0 {
		t.Fatal("healthy fleet alerted")
	}
	if err := mgr.SetFirmwareOK("r2", false); err != nil {
		t.Fatal(err)
	}
	alerts := w.SweepOnce()
	if len(alerts) != 1 || alerts[0].Rack != "r2" {
		t.Fatalf("alerts = %v", alerts)
	}
	// The flagged rack indeed refuses actions — exactly what the
	// watchdog's fake-action probe predicts.
	if err := mgr.Shutdown("r2"); err == nil {
		t.Fatal("broken firmware accepted an action")
	}
	if err := mgr.Shutdown("r1"); err != nil {
		t.Fatalf("healthy rack refused: %v", err)
	}
}

// TestIntegrationTraceStatisticsFeedPlacement sanity-checks that the
// generated demand honors the paper's mix closely enough for the
// placement results to be comparable across modules.
func TestIntegrationTraceStatisticsFeedPlacement(t *testing.T) {
	room := PaperRoom()
	cfg := DefaultTraceConfig(room.Topo.ProvisionedPower())
	rng := rand.New(rand.NewSource(77))
	trace, err := workload.GenerateTrace(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	total := workload.TotalPowerOf(trace)
	if total < cfg.TargetDemand {
		t.Fatalf("demand %v below target %v", total, cfg.TargetDemand)
	}
	by := workload.PowerByCategory(trace)
	srShare := float64(by[SoftwareRedundant]) / float64(total)
	if srShare < 0.09 || srShare > 0.17 {
		t.Fatalf("SR share %.3f far from 0.13", srShare)
	}
	pol := FlexOfflineShort()
	pol.MaxNodes = 150
	pl, err := pol.Place(context.Background(), room, trace)
	if err != nil {
		t.Fatal(err)
	}
	placedBy := pl.PlacedPowerByCategory()
	for _, cat := range workload.Categories {
		if placedBy[cat] <= 0 {
			t.Fatalf("category %v absent from placement", cat)
		}
	}
}

// TestIntegrationControllerDeterminism: same seeds, same everything.
func TestIntegrationControllerDeterminism(t *testing.T) {
	run := func() []controller.PlannedAction {
		room := PaperRoom()
		trace, err := GenerateTrace(DefaultTraceConfig(room.Topo.ProvisionedPower()), 13)
		if err != nil {
			t.Fatal(err)
		}
		pol := FlexOfflineShort()
		pol.MaxNodes = 100
		pl, err := pol.Place(context.Background(), room, trace)
		if err != nil {
			t.Fatal(err)
		}
		racks := ExpandRacks(pl)
		rackPower := sim.SampleRackPowers(racks, 0.83, rand.New(rand.NewSource(3)))
		load := sim.PairLoadFromRacks(room.Topo, racks, rackPower)
		ups := room.Topo.FailoverLoads(load, 2)
		actions, _, err := PlanActions(PlanInput{
			Topo: room.Topo, Racks: ManagedRacks(racks), UPSPower: ups,
			RackPower: rackPower, Inactive: map[UPSID]bool{2: true},
			Scenario: ScenarioRealistic2(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return actions
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("plans differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Rack != b[i].Rack || a[i].Kind != b[i].Kind {
			t.Fatalf("plan diverges at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}
