package flex

// Ablation benchmarks for the design choices DESIGN.md calls out. Each
// compares the shipped design against a degraded variant and prints the
// delta, once.

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"flex/internal/cooling"
	"flex/internal/impact"
	"flex/internal/power"
	"flex/internal/sim"
	"flex/internal/stats"
	"flex/internal/telemetry"
	"flex/internal/workload"
)

// ---------------------------------------------------------------------------
// Batching horizon + ILP vs greedy-only placement.

func BenchmarkAblation_ILPvsGreedy(b *testing.B) {
	first := printHeader("Ablation: ILP vs greedy",
		"Flex-Offline with full branch-and-bound vs root-heuristic-only vs no balance refinement")
	for i := 0; i < b.N; i++ {
		room := PaperRoom()
		base, err := GenerateTrace(DefaultTraceConfig(room.Topo.ProvisionedPower()), 1)
		if err != nil {
			b.Fatal(err)
		}
		variants := []struct {
			name string
			pol  FlexOffline
		}{
			{"full (800 nodes)", FlexOffline{BatchFraction: 0.66, MaxNodes: 800}},
			{"root only (1 node)", FlexOffline{BatchFraction: 0.66, MaxNodes: 1}},
			{"no balance refinement", FlexOffline{BatchFraction: 0.66, MaxNodes: 800, SkipBalanceRefinement: true}},
			{"no diversity reserve", FlexOffline{BatchFraction: 0.66, MaxNodes: 800, SkipDiversityReserve: true}},
		}
		for _, v := range variants {
			var stranded, imbalance []float64
			for s := int64(0); s < 5; s++ {
				tr := ShuffleTrace(base, s)
				pl, err := v.pol.Place(context.Background(), room, tr)
				if err != nil {
					b.Fatal(err)
				}
				stranded = append(stranded, pl.StrandedFraction()*100)
				imbalance = append(imbalance, pl.ThrottlingImbalance()*100)
			}
			if first {
				fmt.Printf("  %-24s stranded med %.2f%% max %.2f%%  imbalance med %.2f%%\n",
					v.name, stats.BoxOf(stranded).Median, stats.BoxOf(stranded).Max,
					stats.BoxOf(imbalance).Median)
			}
		}
		first = false
	}
}

// ---------------------------------------------------------------------------
// Impact-driven selection (Algorithm 1) vs power-greedy selection.

func BenchmarkAblation_ImpactVsPowerGreedy(b *testing.B) {
	first := printHeader("Ablation: impact-driven vs power-greedy selection",
		"workload impact incurred to shave the same failover, Realistic-1 lens")
	room := PaperRoom()
	trace, err := GenerateTrace(DefaultTraceConfig(room.Topo.ProvisionedPower()), 1)
	if err != nil {
		b.Fatal(err)
	}
	pol := FlexOfflineShort()
	pol.MaxNodes = 300
	pl, err := pol.Place(context.Background(), room, trace)
	if err != nil {
		b.Fatal(err)
	}
	racks := ExpandRacks(pl)
	managed := ManagedRacks(racks)
	lens := ScenarioRealistic1()

	// powerGreedy mimics a policy with no impact functions: every action
	// looks equally costly, so the tie-break (max recovered power) rules.
	powerGreedy := Scenario{
		Name: "power-greedy",
		ByCategory: map[Category]ImpactFunction{
			SoftwareRedundant:   impact.Zero("pg-sr"),
			NonRedundantCapable: impact.Zero("pg-cap"),
		},
	}

	score := func(sc Scenario) (worst float64, actions int) {
		rng := rand.New(rand.NewSource(7))
		for f := range room.Topo.UPSes {
			rackPower := sim.SampleRackPowers(racks, 0.84, rng)
			load := sim.PairLoadFromRacks(room.Topo, racks, rackPower)
			ups := room.Topo.FailoverLoads(load, power.UPSID(f))
			acts, _, err := PlanActions(PlanInput{
				Topo: room.Topo, Racks: managed, UPSPower: ups,
				RackPower: rackPower,
				Inactive:  map[UPSID]bool{UPSID(f): true},
				Scenario:  sc,
			})
			if err != nil {
				b.Fatal(err)
			}
			actions += len(acts)
			// Evaluate the *true* impact of the chosen action set through
			// the Realistic-1 lens.
			affected := map[string]int{}
			total := map[string]int{}
			cat := map[string]Category{}
			for _, r := range managed {
				total[r.Workload]++
				cat[r.Workload] = r.Category
			}
			for _, a := range acts {
				affected[a.Workload]++
			}
			for w, n := range affected {
				v := lens.For(w, cat[w]).At(float64(n) / float64(total[w]))
				if v > worst {
					worst = v
				}
			}
		}
		return worst, actions
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wImpact, aImpact := score(lens)
		wGreedy, aGreedy := score(powerGreedy)
		if first {
			fmt.Printf("  impact-driven: worst workload impact %.2f over %d actions\n", wImpact, aImpact)
			fmt.Printf("  power-greedy:  worst workload impact %.2f over %d actions\n", wGreedy, aGreedy)
			first = false
		}
	}
}

// ---------------------------------------------------------------------------
// Telemetry consensus vs single meter under fault injection.

func BenchmarkAblation_MeterConsensus(b *testing.B) {
	first := printHeader("Ablation: 3-meter consensus vs single meter",
		"reading error and availability with one injected misreading/failed meter")
	for i := 0; i < b.N; i++ {
		truth := power.Watts(1.2 * power.MW)
		src := func() power.Watts { return truth }
		mech := func() power.Watts { return 60 * power.KW }
		consensus := telemetry.NewUPSLogicalMeter("UPS-1", src, mech, 1)
		single := telemetry.NewSimMeter("UPS-1/only", src, telemetry.SimMeterConfig{Noise: 0.004, Seed: 1})

		// Inject a gross misreading into one physical meter of each.
		consensus.Meters()[0].(*telemetry.SimMeter).SetOffset(0.5 * power.MW)
		single.SetOffset(0.5 * power.MW)

		now := time.Unix(0, 0)
		var consensusErr, singleErr float64
		for s := 0; s < 50; s++ {
			now = now.Add(4 * time.Second)
			cv, err := consensus.Read(now)
			if err != nil {
				b.Fatal(err)
			}
			sv, _ := single.Read(now)
			consensusErr = math.Max(consensusErr, math.Abs(float64(cv-truth))/float64(truth))
			singleErr = math.Max(singleErr, math.Abs(float64(sv-truth))/float64(truth))
		}
		if first {
			fmt.Printf("  consensus max error: %.2f%%   single-meter max error: %.2f%%\n",
				consensusErr*100, singleErr*100)
			// And hard failure: the consensus survives, the single meter
			// goes dark.
			consensus.Meters()[1].(*telemetry.SimMeter).SetFailed(true)
			if _, err := consensus.Read(now.Add(time.Second)); err != nil {
				fmt.Printf("  consensus lost quorum after a second fault (expected with 2/3 down)\n")
			} else {
				fmt.Printf("  consensus still serving after one failed + one misreading meter\n")
			}
			first = false
		}
	}
}

// ---------------------------------------------------------------------------
// Safety buffer size.

func BenchmarkAblation_SafetyBuffer(b *testing.B) {
	first := printHeader("Ablation: controller safety buffer",
		"actions taken and residual overdraws vs buffer size, with ±4% rack power mis-estimation")
	room := PaperRoom()
	trace, err := GenerateTrace(DefaultTraceConfig(room.Topo.ProvisionedPower()), 1)
	if err != nil {
		b.Fatal(err)
	}
	pol := FlexOfflineShort()
	pol.MaxNodes = 300
	pl, err := pol.Place(context.Background(), room, trace)
	if err != nil {
		b.Fatal(err)
	}
	racks := ExpandRacks(pl)
	managed := ManagedRacks(racks)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, buffer := range []Watts{0, 12 * KW, 24 * KW, 48 * KW} {
			rng := rand.New(rand.NewSource(5))
			actions, violations, runs := 0, 0, 0
			for f := range room.Topo.UPSes {
				for s := 0; s < 3; s++ {
					runs++
					truePower := sim.SampleRackPowers(racks, 0.84, rng)
					// The controller sees a stale/misestimated snapshot.
					seen := make(map[string]Watts, len(truePower))
					for id, p := range truePower {
						seen[id] = Watts(float64(p) * (1 + 0.04*rng.NormFloat64()))
					}
					load := sim.PairLoadFromRacks(room.Topo, racks, truePower)
					ups := room.Topo.FailoverLoads(load, power.UPSID(f))
					acts, _, err := PlanActions(PlanInput{
						Topo: room.Topo, Racks: managed, UPSPower: ups,
						RackPower: seen,
						Inactive:  map[UPSID]bool{UPSID(f): true},
						Scenario:  ScenarioRealistic1(),
						Buffer:    buffer,
					})
					if err != nil {
						b.Fatal(err)
					}
					actions += len(acts)
					// Apply the *true* recoveries and check for residual
					// overdraw.
					est := append([]Watts(nil), ups...)
					byID := map[string]RackInstance{}
					for _, r := range racks {
						byID[r.ID] = r
					}
					for _, a := range acts {
						r := byID[a.Rack]
						var rec Watts
						if a.Kind == ActionShutdown {
							rec = truePower[r.ID]
						} else {
							rec = truePower[r.ID] - r.FlexPower
							if rec < 0 {
								rec = 0
							}
						}
						pair := room.Topo.Pairs[r.Pair]
						aU, bU := pair.UPSes[0], pair.UPSes[1]
						switch power.UPSID(f) {
						case aU:
							est[bU] -= rec
						case bU:
							est[aU] -= rec
						default:
							est[aU] -= rec / 2
							est[bU] -= rec / 2
						}
					}
					for u := range room.Topo.UPSes {
						if UPSID(u) == UPSID(f) {
							continue
						}
						if est[u] > room.Topo.UPSes[u].Capacity {
							violations++
							break
						}
					}
				}
			}
			if first {
				fmt.Printf("  buffer %-8v avg actions %.1f  residual overdraw %d/%d runs\n",
					buffer, float64(actions)/float64(runs), violations, runs)
			}
		}
		first = false
	}
}

// ---------------------------------------------------------------------------
// Redundancy designs.

func BenchmarkAblation_RedundancyDesigns(b *testing.B) {
	first := printHeader("Ablation: redundancy designs",
		"reserved power, Flex gain, and worst failover load across xN/y designs")
	for i := 0; i < b.N; i++ {
		rows := CompareDesigns()
		if first {
			for _, d := range rows {
				fmt.Printf("  %-14s reserved %5.1f%%  gain %5.1f%%  worst failover %3.0f%%  (EOL tolerance %v)\n",
					d.Name, d.ReservedFraction*100, d.ExtraServerFraction*100,
					d.WorstFailoverLoad*100, EndOfLifeTripCurve().Tolerance(d.WorstFailoverLoad))
			}
			first = false
		}
	}
}

// cooling0 converts an int to a cooling domain ID.
func cooling0(i int) cooling.DomainID { return cooling.DomainID(i) }

// keep the workload import used even when categories are inlined above.
var _ = workload.SoftwareRedundant

// ---------------------------------------------------------------------------
// §VI partial-reserve deployments.

func BenchmarkSectionVI_PartialReserve(b *testing.B) {
	first := printHeader("§VI partial reserve",
		"throttle-only rooms at partial reserve utilization (paper: first production deployments use 42%)")
	for i := 0; i < b.N; i++ {
		topo := PaperRoom().Topo
		for _, alpha := range []float64{0, 0.42, 1.0} {
			room, err := PartialReserveRoom(topo, 60, alpha)
			if err != nil {
				b.Fatal(err)
			}
			cfg := DefaultTraceConfig(0)
			cfg.TargetDemand = Watts(1.15 * float64(room.AllocatablePower()))
			if alpha < 1 {
				// Public-cloud mix: no software-redundant workloads (§II-B).
				cfg.CategoryShares = [3]float64{0, 0.69, 0.31}
			}
			trace, err := GenerateTrace(cfg, 3)
			if err != nil {
				b.Fatal(err)
			}
			pol := FlexOffline{BatchFraction: 0.5, MaxNodes: 200}
			pl, err := pol.Place(context.Background(), room, trace)
			if err != nil {
				b.Fatal(err)
			}
			if err := pl.Validate(); err != nil {
				b.Fatalf("alpha=%.2f unsafe: %v", alpha, err)
			}
			if first {
				extra := float64(pl.PairLoad().Total())/float64(topo.ConventionalAllocatablePower()) - 1
				fmt.Printf("  reserve use %3.0f%%: placed %v (%+.1f%% vs conventional), stranded %.1f%% of allocatable\n",
					alpha*100, pl.PairLoad().Total(), extra*100, pl.StrandedFraction()*100)
			}
		}
		first = false
	}
}

// ---------------------------------------------------------------------------
// Flex + oversubscription composition (paper §I/related work).

func BenchmarkExtension_FlexPlusOversubscription(b *testing.B) {
	first := printHeader("Extension: Flex + oversubscription",
		"placed nameplate power when composing Flex with normal-operation oversubscription")
	for i := 0; i < b.N; i++ {
		topo := PaperRoom().Topo
		cfg := DefaultTraceConfig(topo.ProvisionedPower())
		cfg.TargetDemand = Watts(1.4 * float64(topo.ProvisionedPower()))
		trace, err := GenerateTrace(cfg, 2)
		if err != nil {
			b.Fatal(err)
		}
		pol := FlexOffline{BatchFraction: 0.5, MaxNodes: 200}
		for _, over := range []float64{1.0, 1.10, 1.20} {
			room, err := NewRoom(topo, 140)
			if err != nil {
				b.Fatal(err)
			}
			room.Oversubscription = over
			pl, err := pol.Place(context.Background(), room, trace)
			if err != nil {
				b.Fatal(err)
			}
			if err := pl.Validate(); err != nil {
				b.Fatalf("O=%.2f unsafe: %v", over, err)
			}
			if first {
				fmt.Printf("  oversubscription %.2f: placed %v nameplate (%.0f%% of provisioned), stranded %.1f%%\n",
					over, pl.PairLoad().Total(),
					100*float64(pl.PairLoad().Total())/float64(topo.ProvisionedPower()),
					pl.StrandedFraction()*100)
			}
		}
		first = false
	}
}

// ---------------------------------------------------------------------------
// §VI cooling redundancy.

func BenchmarkSectionVI_CoolingRedundancy(b *testing.B) {
	first := printHeader("§VI cooling redundancy",
		"thermal window and mitigation mix after losing cooling units (paper: minutes available; migrate before capping)")
	for i := 0; i < b.N; i++ {
		domains := []CoolingDomain{
			{ID: 0, Name: "dom-A", Units: 4, UnitCFM: 40000, RedundantUnits: 1},
			{ID: 1, Name: "dom-B", Units: 4, UnitCFM: 40000, RedundantUnits: 1},
		}
		var racks []CoolingRack
		mk := func(id string, dom int, cat Category, kw float64) CoolingRack {
			r := CoolingRack{ID: id, Domain: cooling0(dom), Power: Watts(kw * 1e3),
				CFMPerWatt: 0.1, Category: cat}
			if cat == NonRedundantCapable {
				r.FlexPower = Watts(0.85 * float64(r.Power))
			}
			return r
		}
		for j := 0; j < 3; j++ {
			racks = append(racks, mk(fmt.Sprintf("a-sr-%d", j), 0, SoftwareRedundant, 100))
		}
		for j := 0; j < 6; j++ {
			racks = append(racks, mk(fmt.Sprintf("a-cap-%d", j), 0, NonRedundantCapable, 100))
		}
		for j := 0; j < 6; j++ {
			racks = append(racks, mk(fmt.Sprintf("a-nc-%d", j), 0, NonRedundantNonCapable, 100))
		}
		for j := 0; j < 5; j++ {
			racks = append(racks, mk(fmt.Sprintf("b-nc-%d", j), 1, NonRedundantNonCapable, 100))
		}
		plan, err := PlanCoolingMitigation(domains, racks, 0, 2, DefaultThermalParams())
		if err != nil {
			b.Fatal(err)
		}
		if first {
			kinds := map[string]int{}
			for _, s := range plan.Steps {
				kinds[s.Kind.String()]++
			}
			fmt.Printf("  lose 2/4 CRAH units: thermal window %v (power budget: %v)\n",
				plan.Window.Truncate(time.Second), FlexLatencyBudget)
			fmt.Printf("  mitigation: %v, post-mitigation safe: %v\n", kinds, plan.Safe)
			first = false
		}
	}
}
