// Quickstart: build a zero-reserved-power room, place a demand trace with
// Flex-Offline, and watch Flex-Online's Algorithm 1 pick corrective
// actions for a UPS failure at high utilization.
package main

import (
	"context"
	"fmt"
	"log"

	"flex"
)

func main() {
	// The paper's 9.6MW 4N/3 room: 4 × 2.4MW UPSes, 18 PDU-pairs.
	room := flex.PaperRoom()
	fmt.Printf("room: %v provisioned (%v design), conventional limit %v\n",
		room.Topo.ProvisionedPower(), room.Topo.Design, room.Topo.ConventionalAllocatablePower())

	// Generate short-term demand worth 115% of provisioned power with the
	// paper's workload mix, and place it with Flex-Offline-Short.
	trace, err := flex.GenerateTrace(flex.DefaultTraceConfig(room.Topo.ProvisionedPower()), 42)
	if err != nil {
		log.Fatal(err)
	}
	policy := flex.FlexOfflineShort()
	policy.MaxNodes = 300
	pl, err := policy.Place(context.Background(), room, trace)
	if err != nil {
		log.Fatal(err)
	}
	if err := pl.Validate(); err != nil {
		log.Fatal(err) // never: Flex-Offline placements are safe by construction
	}
	fmt.Printf("placed %d/%d deployments, stranded power %.1f%%, throttling imbalance %.1f%%\n",
		len(pl.Placed()), len(trace), pl.StrandedFraction()*100, pl.ThrottlingImbalance()*100)

	// Simulate a failover at 85% utilization: UPS-1 goes out, its load
	// lands on the three survivors (≈113% of their rating each).
	racks := flex.ExpandRacks(pl)
	ups := make([]flex.Watts, len(room.Topo.UPSes))
	for u := range ups {
		ups[u] = flex.Watts(0.85 * 4.0 / 3.0 * float64(room.Topo.UPSes[u].Capacity))
	}
	ups[0] = 0

	actions, insufficient, err := flex.PlanActionsContext(context.Background(), flex.PlanInput{
		Topo:     room.Topo,
		Racks:    flex.ManagedRacks(racks),
		UPSPower: ups,
		Inactive: map[flex.UPSID]bool{0: true},
		Scenario: flex.ScenarioRealistic1(),
	})
	if err != nil {
		log.Fatal(err)
	}
	shut, throttled := 0, 0
	var recovered flex.Watts
	for _, a := range actions {
		if a.Kind == flex.ActionShutdown {
			shut++
		} else {
			throttled++
		}
		recovered += a.Recovered
	}
	fmt.Printf("failover plan: %d racks shut down, %d throttled, %v recovered (insufficient=%v)\n",
		shut, throttled, recovered, insufficient)
	fmt.Printf("first actions: ")
	for i, a := range actions {
		if i == 3 {
			fmt.Printf("…")
			break
		}
		fmt.Printf("%s→%s (impact %.2f)  ", a.Rack, a.Kind, a.Impact)
	}
	fmt.Println()
}
