// Capacity planning: compare placement policies on the same short-term
// demand — the paper's Figure 9/10 experiment in miniature. A capacity
// planner would run this before committing a quarter's deployments to a
// room, to see how much power each approach strands.
package main

import (
	"context"
	"fmt"
	"log"

	"flex"
)

func main() {
	room := flex.PaperRoom()
	base, err := flex.GenerateTrace(flex.DefaultTraceConfig(room.Topo.ProvisionedPower()), 7)
	if err != nil {
		log.Fatal(err)
	}

	short := flex.FlexOfflineShort()
	short.MaxNodes = 300
	oracle := flex.FlexOfflineOracle()
	oracle.MaxNodes = 1200
	policies := []flex.Policy{
		flex.RandomPolicy{Seed: 7},
		flex.BalancedRoundRobinPolicy{},
		short,
		oracle,
	}

	fmt.Printf("demand: %d deployments, %v total (%.0f%% of provisioned)\n\n",
		len(base), totalPower(base),
		100*float64(totalPower(base))/float64(room.Topo.ProvisionedPower()))
	fmt.Printf("%-22s %-10s %-10s %-10s %s\n",
		"policy", "placed", "stranded", "imbalance", "rejected deployments")
	for _, pol := range policies {
		pl, err := pol.Place(context.Background(), room, base)
		if err != nil {
			log.Fatal(err)
		}
		if err := pl.Validate(); err != nil {
			log.Fatalf("%s produced an unsafe placement: %v", pol.Name(), err)
		}
		fmt.Printf("%-22s %-10v %-9.2f%% %-9.2f%% %d\n",
			pol.Name(), pl.PairLoad().Total(),
			pl.StrandedFraction()*100, pl.ThrottlingImbalance()*100,
			len(pl.Unplaced()))
	}

	fmt.Println("\nEvery placement above survives any single-UPS failure even at")
	fmt.Println("100% utilization, after shutting down software-redundant racks and")
	fmt.Println("throttling cap-able racks to their flex power (Eq. 4 guarantee).")
}

func totalPower(ds []flex.Deployment) flex.Watts {
	var sum flex.Watts
	for _, d := range ds {
		sum += d.TotalPower()
	}
	return sum
}
