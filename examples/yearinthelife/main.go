// Year in the life: the operations view of a zero-reserved-power
// datacenter — where planned maintenance fits (§III), how often Flex ever
// has to act over simulated years of operation (Monte Carlo §III check),
// and what discounts the flexibility earns customers (§VI charge model).
package main

import (
	"fmt"
	"log"

	"flex"
)

func main() {
	// 1. Where does planned maintenance go? Into the weekly dips.
	profile := flex.WeekProfile(0.80, 0.17)
	windows, err := flex.FindMaintenanceWindows(profile, 6, 0.75)
	if err != nil {
		log.Fatal(err)
	}
	quiet := 0
	for _, w := range windows {
		quiet += w.Hours
	}
	fmt.Printf("planned maintenance: %d windows/week below the 75%% action threshold (%d quiet hours)\n",
		len(windows), quiet)
	day := windows[0].StartHour / 24
	fmt.Printf("  safest window: day %d hour %02d:00, %d hours at ≤%.0f%% utilization\n",
		day+1, windows[0].StartHour%24, windows[0].Hours, windows[0].PeakUtilization*100)

	// 2. How often does Flex-Online actually act? Simulate 300 years.
	p := flex.DefaultMonteCarloParams()
	p.Years = 300
	res, err := flex.SimulateYears(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d simulated years (1 h/yr unplanned + 40 h/yr planned maintenance):\n", p.Years)
	fmt.Printf("  corrective actions needed %.2f hours/year\n",
		float64(res.ActionHours)/float64(p.Years))
	fmt.Printf("  action-free operation: %.1f nines (paper: ≥4)\n", res.NoActionNines)
	fmt.Printf("  software-redundant availability: %.1f nines (paper: ≥4)\n", res.SRNines)

	// 3. What is that flexibility worth to customers?
	a, err := flex.AnalyzeFeasibility(flex.DefaultFeasibilityParams())
	if err != nil {
		log.Fatal(err)
	}
	m := flex.DefaultChargeModel()
	fmt.Println("\ndifferentiated pricing (§VI):")
	for _, cat := range []flex.Category{
		flex.SoftwareRedundant, flex.NonRedundantCapable, flex.NonRedundantNonCapable,
	} {
		d, err := m.Discount(cat, a)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28v %5.2f%% discount\n", cat, d*100)
	}
	s, err := flex.ComputeSavings(flex.Redundancy{X: 4, Y: 3}, 128*flex.MW, 5)
	if err != nil {
		log.Fatal(err)
	}
	frac, err := m.FundedBy(map[flex.Category]float64{
		flex.SoftwareRedundant:      0.13,
		flex.NonRedundantCapable:    0.56,
		flex.NonRedundantNonCapable: 0.31,
	}, a, s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  …consuming %.1f%% of the $%.0fM capacity gain — the rest is margin\n",
		frac*100, s.Dollars/1e6)
}
