// Cost savings: the economics of zero-reserved-power datacenters (paper
// §I and §II-A) — how much reserved power each redundancy design wastes,
// how many extra servers Flex unlocks, and the avoided construction cost,
// plus the §III feasibility argument that makes it safe.
package main

import (
	"fmt"
	"log"

	"flex"
)

func main() {
	fmt.Println("Reserved power by redundancy design:")
	fmt.Printf("  %-14s %-10s %-11s %s\n", "design", "reserved", "Flex gain", "worst failover load")
	for _, d := range flex.CompareDesigns() {
		fmt.Printf("  %-14s %8.1f%%  %8.1f%%   %.0f%% of UPS rating\n",
			d.Name, d.ReservedFraction*100, d.ExtraServerFraction*100, d.WorstFailoverLoad*100)
	}

	fmt.Println("\nConstruction savings for a 128MW site (4N/3):")
	for _, dpw := range []float64{5, 7.5, 10} {
		s, err := flex.ComputeSavings(flex.Redundancy{X: 4, Y: 3}, 128*flex.MW, dpw)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  at $%.1f/W: +%v of IT capacity → $%.0fM avoided\n",
			dpw, s.ExtraPower, s.Dollars/1e6)
	}

	a, err := flex.AnalyzeFeasibility(flex.DefaultFeasibilityParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nWhy it is safe (§III):")
	fmt.Printf("  corrective actions only above %.0f%% utilization during a supply outage\n",
		a.ActionThreshold*100)
	fmt.Printf("  P(action needed) = %.4f%% → %.1f nines of action-free operation\n",
		a.ProbActionNeeded*100, a.NoActionNines)
	fmt.Printf("  P(software-redundant shutdown) = %.4f%% → %.1f nines for SR servers\n",
		a.ProbSRShutdown*100, a.SRNines)
	fmt.Printf("  non-redundant workloads: at most throttled, %.0f nines preserved\n",
		a.NonRedundantNines)
}
