// Telemetry pipeline: the paper's Figure 7 with real sockets — meters and
// pollers publish over TCP to two independent broker servers; a
// subscriber (where the Flex controllers would sit) merges and
// deduplicates both streams. Faults are injected live: a meter misreads,
// then one whole broker dies, and the power view keeps updating.
package main

import (
	"fmt"
	"log"
	"net"
	"sync/atomic"
	"time"

	"flex"
	"flex/internal/clock"
	"flex/internal/telemetry"
)

func main() {
	// One wall clock for the whole pipeline, injected everywhere through
	// the clock.Clock interface; swap in clock.NewVirtual to run the same
	// scenario deterministically.
	var clk clock.Clock = clock.Real{}

	// Ground truth: one UPS ramping from 1.0 to 1.3MW.
	var milliwatts atomic.Int64
	milliwatts.Store(1.0e9)
	source := func() flex.Watts { return flex.Watts(milliwatts.Load()) / 1000 }
	mech := func() flex.Watts { return 60 * flex.KW }

	// Two broker servers on separate ports (separate fault domains).
	var servers []*telemetry.BrokerServer
	var addrs []string
	for i := 0; i < 2; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		srv := telemetry.NewBrokerServer(telemetry.NewBroker(fmt.Sprintf("pubsub-%c", 'A'+i)))
		go func() { _ = srv.Serve(l) }()
		servers = append(servers, srv)
		addrs = append(addrs, l.Addr().String())
	}

	// Two redundant pollers, each publishing the 3-meter consensus to
	// BOTH brokers over TCP.
	meter := telemetry.NewUPSLogicalMeter("UPS-1", source, mech, 1)
	var pollers []*telemetry.Poller
	for i := 0; i < 2; i++ {
		var pubs []telemetry.SamplePublisher
		for _, addr := range addrs {
			pubs = append(pubs, telemetry.NewRemotePublisher(addr, clk))
		}
		pollers = append(pollers, telemetry.NewPoller(
			fmt.Sprintf("poller-%c", 'A'+i), clk, 100*time.Millisecond,
			pubs, []telemetry.Target{{Meter: meter, Topic: telemetry.TopicUPS}}))
	}

	// The controller-side view: subscribe to both brokers, deduplicate.
	view := telemetry.NewLatestPower()
	dedupe := telemetry.NewDeduper()
	for _, addr := range addrs {
		sub, err := telemetry.RemoteSubscribe(addr, telemetry.TopicUPS)
		if err != nil {
			log.Fatal(err)
		}
		go func(sub *telemetry.RemoteSubscription) {
			for s := range sub.C {
				if dedupe.Fresh(s) {
					view.Update(s)
				}
			}
		}(sub)
	}

	poll := func() {
		for _, p := range pollers {
			p.PollOnce()
		}
		clk.Sleep(150 * time.Millisecond)
	}
	show := func(label string) {
		v, at, ok := view.Get("UPS-1")
		fmt.Printf("%-34s view=%v (ok=%v, measured %s ago)\n",
			label, v, ok, clk.Now().Sub(at).Truncate(time.Millisecond))
	}

	poll()
	show("healthy pipeline:")

	// Fault 1: the direct UPS meter starts misreading by +400kW. The
	// median consensus masks it.
	meter.Meters()[0].(*telemetry.SimMeter).SetOffset(400 * flex.KW)
	milliwatts.Store(1.1e9)
	poll()
	show("one meter misreading +400kW:")

	// Fault 2: broker A dies entirely. The duplicate path still delivers.
	servers[0].Close()
	milliwatts.Store(1.2e9)
	poll()
	show("broker A down:")

	// Fault 3: poller A down too — single surviving path end to end.
	pollers[0].SetDown(true)
	milliwatts.Store(1.3e9)
	poll()
	show("broker A + poller A down:")

	fmt.Println("\nThe view tracked the (ramping) truth through every fault: no single")
	fmt.Println("point of failure between the meters and the Flex controllers.")
}
