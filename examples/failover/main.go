// Failover: the full Flex-Online stack end to end — the §V-C emulation of
// a 4.8MW zero-reserved-power room at 80% utilization where a UPS fails,
// the multi-primary controllers shed power within the 10-second budget,
// and everything is restored when the UPS returns. Prints the Figure 13
// timeline at coarse resolution plus the run summary.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"flex"
)

func main() {
	sc := flex.ScenarioRealistic1()
	res, err := flex.RunEmulationContext(context.Background(), flex.EmulationConfig{
		Utilization: 0.80,
		Scenario:    &sc,
		Tick:        time.Second,
		FailAt:      6 * time.Minute,
		RecoverAt:   10 * time.Minute,
		Duration:    14 * time.Minute,
		Seed:        2,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("t        stage     UPS1     UPS2     UPS3     UPS4     SR      cap-able  non-cap")
	for i, p := range res.Series {
		if i%30 != 0 { // print every 30s
			continue
		}
		fmt.Printf("%-8v %-9s %-8v %-8v %-8v %-8v %-7v %-9v %v\n",
			p.T, p.Stage,
			p.UPSPower[0], p.UPSPower[1], p.UPSPower[2], p.UPSPower[3],
			p.RackPower[flex.SoftwareRedundant],
			p.RackPower[flex.NonRedundantCapable],
			p.RackPower[flex.NonRedundantNonCapable])
	}

	fmt.Printf("\nsummary: shut down %.0f%% of software-redundant racks, throttled %.0f%% of cap-able racks\n",
		res.SRShutdownFrac*100, res.CapThrottledFrac*100)
	fmt.Printf("failure → power back under capacity: %v (budget %v); outage=%v\n",
		res.ShaveLatency, flex.FlexLatencyBudget, res.Outage)
	fmt.Printf("TPC-E-like p95 latency on throttled racks: %+.1f%% (worst %+.1f%%)\n",
		res.P95IncreasePct, res.WorstIncreasePct)
	fmt.Printf("all racks restored after recovery: %v\n", res.RestoredAll)
}
