package flex

import (
	"io"
	"math/rand"

	"flex/internal/workload"
)

// Workload types.
type (
	// Category classifies a workload's tolerance to corrective actions.
	Category = workload.Category
	// Deployment is one unbreakable server deployment request.
	Deployment = workload.Deployment
	// TraceConfig parameterizes the synthetic demand generator.
	TraceConfig = workload.TraceConfig
	// RegionMix is a per-region workload distribution (Figure 3).
	RegionMix = workload.RegionMix
)

// Workload categories.
const (
	SoftwareRedundant      = workload.SoftwareRedundant
	NonRedundantCapable    = workload.NonRedundantCapable
	NonRedundantNonCapable = workload.NonRedundantNonCapable
)

// DefaultTraceConfig returns the paper's §V-A demand configuration for a
// room with the given provisioned power.
func DefaultTraceConfig(provisioned Watts) TraceConfig {
	return workload.DefaultTraceConfig(provisioned)
}

// GenerateTrace produces a synthetic short-term-demand trace.
func GenerateTrace(cfg TraceConfig, seed int64) ([]Deployment, error) {
	return workload.GenerateTrace(cfg, rand.New(rand.NewSource(seed)))
}

// ShuffleTrace permutes a trace (the paper evaluates 10 shuffles).
func ShuffleTrace(trace []Deployment, seed int64) []Deployment {
	return workload.Shuffle(trace, rand.New(rand.NewSource(seed)))
}

// Figure3Regions returns the synthetic per-region workload mix whose mean
// matches the paper's published averages.
func Figure3Regions() []RegionMix { return workload.Figure3Regions() }

// WriteTrace / ReadTrace serialize demand traces as JSON.
func WriteTrace(w io.Writer, trace []Deployment) error { return workload.WriteTrace(w, trace) }
func ReadTrace(r io.Reader) ([]Deployment, error)      { return workload.ReadTrace(r) }
