package flex

// Fuzz targets for the parsing and interpolation surfaces. `go test` runs
// the seed corpus as regular tests; `go test -fuzz=FuzzX` explores.

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTrace: arbitrary JSON must never panic, and every accepted trace
// must round-trip identically.
func FuzzReadTrace(f *testing.F) {
	f.Add(`[]`)
	f.Add(`[{"id":0,"workload":"w","category":"software-redundant","racks":2,"power_per_rack_watts":1000,"flex_power_fraction":0}]`)
	f.Add(`[{"id":1,"workload":"v","category":"non-redundant-capable","racks":5,"power_per_rack_watts":14400,"flex_power_fraction":0.8}]`)
	f.Add(`not json`)
	f.Add(`[{"category":"martian"}]`)
	f.Fuzz(func(t *testing.T, input string) {
		trace, err := ReadTrace(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteTrace(&buf, trace); err != nil {
			t.Fatalf("accepted trace failed to encode: %v", err)
		}
		again, err := ReadTrace(&buf)
		if err != nil {
			t.Fatalf("round-trip decode failed: %v", err)
		}
		if len(again) != len(trace) {
			t.Fatalf("round trip changed length: %d vs %d", len(again), len(trace))
		}
		for i := range again {
			if again[i] != trace[i] {
				t.Fatalf("round trip changed deployment %d", i)
			}
		}
	})
}

// FuzzImpactFunction: any accepted vertex set must produce a bounded,
// monotone interpolation.
func FuzzImpactFunction(f *testing.F) {
	f.Add(0.0, 0.0, 0.5, 0.3, 1.0, 1.0)
	f.Add(0.2, 0.1, 0.4, 0.1, 0.9, 0.8)
	f.Add(-1.0, 2.0, 0.5, 0.5, 2.0, -1.0)
	f.Fuzz(func(t *testing.T, x1, y1, x2, y2, x3, y3 float64) {
		fn, err := NewImpactFunction("fuzz", []ImpactPoint{
			{Fraction: x1, Impact: y1},
			{Fraction: x2, Impact: y2},
			{Fraction: x3, Impact: y3},
		})
		if err != nil {
			return
		}
		prev := -1.0
		for i := 0; i <= 100; i++ {
			v := fn.At(float64(i) / 100)
			if v < 0 || v > 1 {
				t.Fatalf("impact %v out of [0,1]", v)
			}
			if v < prev-1e-12 {
				t.Fatalf("impact not monotone at %d: %v < %v", i, v, prev)
			}
			prev = v
		}
	})
}
