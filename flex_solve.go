package flex

import (
	"context"

	"flex/internal/lp"
	"flex/internal/milp"
	"flex/internal/placement"
)

// MILP solver surface — the engine behind Flex-Offline's batch ILP,
// exposed for users who want to solve their own placement variants or
// tune the search.
type (
	// MILPProblem is a linear program plus integrality requirements.
	MILPProblem = milp.Problem
	// SolveOptions tunes the parallel branch-and-bound search (workers,
	// determinism, limits, warm starts).
	SolveOptions = milp.Options
	// SolveResult is one solve's outcome, including why a truncated
	// search stopped.
	SolveResult = milp.Result
	// SolveStatus classifies a solve outcome.
	SolveStatus = milp.Status
	// StopReason says why a search stopped before proving optimality.
	StopReason = milp.StopReason
	// LinearProblem is a linear program over nonnegative variables.
	LinearProblem = lp.Problem
	// LinearConstraint is one row of a LinearProblem.
	LinearConstraint = lp.Constraint
	// ConstraintSense relates a constraint row to its right-hand side.
	ConstraintSense = lp.Sense
)

// Solve statuses.
const (
	SolveOptimal    = milp.Optimal
	SolveFeasible   = milp.Feasible
	SolveInfeasible = milp.Infeasible
	SolveUnbounded  = milp.Unbounded
)

// Stop reasons for truncated searches.
const (
	StopNone      = milp.StopNone
	StopDeadline  = milp.StopDeadline
	StopNodeLimit = milp.StopNodeLimit
	StopCanceled  = milp.StopCanceled
)

// Constraint senses.
const (
	LE = lp.LE
	GE = lp.GE
	EQ = lp.EQ
)

// SolveMILP runs the parallel branch-and-bound solver under ctx: a
// context deadline bounds the search (Stop == StopDeadline), and
// cancellation returns the best incumbent with context.Cause(ctx).
func SolveMILP(ctx context.Context, p *MILPProblem, opts SolveOptions) (SolveResult, error) {
	return milp.SolveContext(ctx, p, opts)
}

// BatchPlacementILP builds the Flex-Offline batch ILP (Eq. 1–5) for
// placing the batch into the room — the exact problem FlexOffline solves
// per flush, useful as a realistic solver workload or a starting point
// for custom placement formulations.
func BatchPlacementILP(room *Room, batch []Deployment) *MILPProblem {
	return placement.BatchILP(room, batch)
}
