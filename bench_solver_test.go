package flex

import (
	"context"
	"fmt"
	"math"
	"testing"

	"flex/internal/lp"
	"flex/internal/milp"
)

// referenceSerialSolve is the repo's previous branch-and-bound engine,
// preserved verbatim in spirit as the scaling baseline: a serial DFS that
// clones the LP and re-solves it from scratch at every node. The parallel
// frontier engine in internal/milp must beat its node throughput — on a
// single-CPU runner the speedup comes from the per-node work it no longer
// does (no clone, arena-reused tableaux, fix-and-substitute presolve), and
// extra workers must at least not lose that ground.
func referenceSerialSolve(p *milp.Problem, maxNodes int) (nodes int, objective float64) {
	n := p.LP.NumVars()
	sign := 1.0
	if !p.LP.Maximize {
		sign = -1.0
	}
	var bestObj float64
	haveBest := false

	type node struct {
		extra []lp.Constraint
		bound float64
	}
	stack := []node{{bound: math.Inf(1)}}
	for len(stack) > 0 && nodes < maxNodes {
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if haveBest && nd.bound <= sign*bestObj+1e-6 {
			continue
		}
		sub := p.LP.Clone()
		sub.Constraints = append(sub.Constraints, nd.extra...)
		r, err := lp.Solve(sub)
		if err != nil {
			return nodes, bestObj
		}
		nodes++
		if r.Status != lp.Optimal {
			continue
		}
		relax := sign * r.Objective
		if haveBest && relax <= sign*bestObj+1e-6 {
			continue
		}
		branch, frac := -1, 0.0
		for j := 0; j < n; j++ {
			if !p.Integer[j] {
				continue
			}
			f := r.X[j] - math.Floor(r.X[j])
			dist := math.Min(f, 1-f)
			if dist > 1e-6 && dist > frac {
				frac = dist
				branch = j
			}
		}
		if branch == -1 {
			obj := 0.0
			for j, c := range p.LP.Objective {
				obj += c * r.X[j]
			}
			if !haveBest || sign*obj > sign*bestObj {
				bestObj, haveBest = obj, true
			}
			continue
		}
		unit := make([]float64, n)
		unit[branch] = 1
		floorC := lp.Constraint{Coeffs: unit, Sense: lp.LE, RHS: math.Floor(r.X[branch])}
		ceilC := lp.Constraint{Coeffs: unit, Sense: lp.GE, RHS: math.Ceil(r.X[branch])}
		for _, c := range []lp.Constraint{floorC, ceilC} {
			child := node{bound: relax, extra: make([]lp.Constraint, len(nd.extra)+1)}
			copy(child.extra, nd.extra)
			child.extra[len(nd.extra)] = c
			stack = append(stack, child)
		}
	}
	return nodes, bestObj
}

// solverBenchProblem is the batch-placement ILP the scaling benchmark
// solves: one Flex-Offline flush on the paper room.
func solverBenchProblem(b *testing.B) *MILPProblem {
	b.Helper()
	room := PaperRoom()
	trace, err := GenerateTrace(DefaultTraceConfig(room.Topo.ProvisionedPower()), 1)
	if err != nil {
		b.Fatal(err)
	}
	if len(trace) < 40 {
		b.Fatalf("trace too short: %d", len(trace))
	}
	// 40 deployments × 6 UPS combinations = 240 binaries with binding
	// capacity: on this instance every engine runs the full node budget
	// (none proves optimality first), so nodes/s compares pure per-node
	// throughput rather than search luck.
	return BatchPlacementILP(room, trace[:40])
}

// BenchmarkSolverScaling measures branch-and-bound node throughput on the
// batch-placement ILP: the preserved serial reference engine vs the
// frontier engine at 1/2/4/8 workers, all truncated at the same node
// budget. The nodes/s metric feeds BENCH_solver.json (make bench);
// benchjson -speedup reports each variant relative to "serial".
func BenchmarkSolverScaling(b *testing.B) {
	p := solverBenchProblem(b)
	const nodeBudget = 300

	b.Run("serial", func(b *testing.B) {
		total := 0
		for i := 0; i < b.N; i++ {
			n, _ := referenceSerialSolve(p, nodeBudget)
			total += n
		}
		b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "nodes/s")
	})

	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			total := 0
			for i := 0; i < b.N; i++ {
				r, err := SolveMILP(context.Background(), p, SolveOptions{Workers: w, MaxNodes: nodeBudget})
				if err != nil {
					b.Fatal(err)
				}
				total += r.Nodes
			}
			b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "nodes/s")
		})
	}
}
