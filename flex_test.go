package flex

import (
	"bytes"
	"context"
	"testing"
	"time"

	"flex/internal/clock"
	"flex/internal/rackmgr"
)

// TestFacadeEndToEnd exercises the public API the way a downstream user
// would: build a room, generate demand, place it, verify safety, then
// plan corrective actions for a failover snapshot.
func TestFacadeEndToEnd(t *testing.T) {
	room := PaperRoom()
	if room.Topo.ProvisionedPower() != 9.6*MW {
		t.Fatalf("provisioned = %v", room.Topo.ProvisionedPower())
	}
	trace, err := GenerateTrace(DefaultTraceConfig(room.Topo.ProvisionedPower()), 1)
	if err != nil {
		t.Fatal(err)
	}
	pol := FlexOfflineShort()
	pol.MaxNodes = 150
	pl, err := pol.Place(context.Background(), room, trace)
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
	if pl.StrandedFraction() > 0.10 {
		t.Errorf("stranded = %.1f%%", pl.StrandedFraction()*100)
	}

	racks := ExpandRacks(pl)
	if len(racks) == 0 {
		t.Fatal("no racks")
	}
	// Failover snapshot at high utilization: UPS 0 out, survivors over.
	ups := make([]Watts, len(room.Topo.UPSes))
	for u := range ups {
		ups[u] = Watts(0.85 * 4.0 / 3.0 * float64(room.Topo.UPSes[u].Capacity))
	}
	ups[0] = 0
	actions, insufficient, err := PlanActions(PlanInput{
		Topo:     room.Topo,
		Racks:    ManagedRacks(racks),
		UPSPower: ups,
		Inactive: map[UPSID]bool{0: true},
		Scenario: ScenarioRealistic1(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if insufficient {
		t.Error("Flex-Offline placement must guarantee sufficiency")
	}
	if len(actions) == 0 {
		t.Error("no corrective actions at 85% utilization failover")
	}
}

func TestFacadeConstants(t *testing.T) {
	if KW != 1e3 || MW != 1e6 {
		t.Error("unit constants")
	}
	if FlexLatencyBudget != 10*time.Second {
		t.Error("latency budget")
	}
	if EndOfLifeTripCurve().Tolerance(4.0/3.0) != 10*time.Second {
		t.Error("trip curve anchor")
	}
	if BeginOfLifeTripCurve().Tolerance(4.0/3.0) != 30*time.Second {
		t.Error("BOL trip curve anchor")
	}
}

func TestFacadeScenariosAndRegions(t *testing.T) {
	if len(Figure11Scenarios()) != 4 {
		t.Error("figure 11 scenarios")
	}
	if len(Figure3Regions()) != 4 {
		t.Error("figure 3 regions")
	}
	f, err := NewImpactFunction("custom", []ImpactPoint{{Fraction: 0, Impact: 0}, {Fraction: 1, Impact: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if f.At(0.5) != 0.5 {
		t.Error("custom impact function")
	}
	if ScenarioDefault().Name != "Default" {
		t.Error("default scenario")
	}
	if ScenarioExtreme1().Name != "Extreme-1" || ScenarioExtreme2().Name != "Extreme-2" {
		t.Error("extreme scenarios")
	}
	if ScenarioRealistic2().Name != "Realistic-2" {
		t.Error("realistic-2")
	}
}

func TestFacadeAnalyses(t *testing.T) {
	a, err := AnalyzeFeasibility(DefaultFeasibilityParams())
	if err != nil {
		t.Fatal(err)
	}
	if a.NoActionNines < 3.9 {
		t.Errorf("feasibility nines = %v", a.NoActionNines)
	}
	s, err := ComputeSavings(Redundancy{X: 4, Y: 3}, 128*MW, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Dollars < 2e8 {
		t.Errorf("savings = %v", s.Dollars)
	}
	if len(CompareDesigns()) == 0 {
		t.Error("design comparison empty")
	}
}

func TestFacadeTraceHelpers(t *testing.T) {
	trace, err := GenerateTrace(DefaultTraceConfig(4.8*MW), 3)
	if err != nil {
		t.Fatal(err)
	}
	shuffled := ShuffleTrace(trace, 5)
	if len(shuffled) != len(trace) {
		t.Error("shuffle changed length")
	}
	topo, err := NewTopology(RoomConfig{
		Design: Redundancy{X: 5, Y: 4}, UPSCapacity: MW, PairsPerCombination: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Pairs) != 10 { // C(5,2)
		t.Errorf("pairs = %d", len(topo.Pairs))
	}
	room, err := NewRoom(topo, 20)
	if err != nil {
		t.Fatal(err)
	}
	if room.TotalSlots() != 200 {
		t.Errorf("slots = %d", room.TotalSlots())
	}
}

// TestFacadeCoverage exercises the thin wrappers end to end.
func TestFacadeWrappers(t *testing.T) {
	// Telemetry wrappers.
	view := NewLatestPower()
	view.Update(Sample{Device: "d", Power: 5, Valid: true, MeasuredAt: time.Unix(1, 0)})
	if v, _, ok := view.Get("d"); !ok || v != 5 {
		t.Fatal("LatestPower wrapper")
	}
	est := NewEWMAEstimator(0.5)
	est.Update(Sample{Device: "d", Power: 10, Valid: true, MeasuredAt: time.Unix(1, 0)})
	if m, ok := est.Estimate("d"); !ok || m != 10 {
		t.Fatal("EWMAEstimator wrapper")
	}
	pl := NewPipeline(PipelineConfig{
		UPSSources: map[string]PowerSource{"UPS-1": func() Watts { return MW }},
	})
	if len(pl.BrokerSet) != 2 {
		t.Fatal("pipeline wrapper")
	}
	if TopicUPS == "" || TopicRack == "" {
		t.Fatal("topics")
	}

	// Trace IO.
	trace, err := GenerateTrace(DefaultTraceConfig(4.8*MW), 9)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, trace); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil || len(back) != len(trace) {
		t.Fatalf("trace IO wrapper: %v %d", err, len(back))
	}

	// Rooms and sites.
	if EmulationRoom().TotalSlots() != 360 {
		t.Fatal("EmulationRoom wrapper")
	}
	pr, err := PartialReserveRoom(PaperRoom().Topo, 60, 0.42)
	if err != nil || pr.ReserveUtilization != 0.42 {
		t.Fatal("PartialReserveRoom wrapper")
	}
	site, err := NewUniformSite("s", 2)
	if err != nil || len(site.Rooms) != 2 {
		t.Fatal("NewUniformSite wrapper")
	}

	// Controller construction.
	room := EmulationRoom()
	ctl := NewController(ControllerConfig{
		Name:  "c",
		Clock: clock.Real{},
		Topo:  room.Topo,
		Racks: nil,
		UPSView: func() *LatestPower {
			v := NewLatestPower()
			for u := range room.Topo.UPSes {
				v.Update(Sample{Device: room.Topo.UPSes[u].Name, Power: 100, Valid: true, MeasuredAt: time.Unix(1, 0)})
			}
			return v
		}(),
		RackView: NewLatestPower(),
		Actuator: rackmgr.NewManager(clock.Real{}, nil),
		Scenario: ScenarioDefault(),
	})
	if out := ctl.Step(); out.Overdraw {
		t.Fatal("unloaded room should not overdraw")
	}

	// Analyses.
	if _, err := SimulateYears(DefaultMonteCarloParams()); err != nil {
		t.Fatal(err)
	}
	a, _ := AnalyzeFeasibility(DefaultFeasibilityParams())
	if d, err := DefaultChargeModel().Discount(SoftwareRedundant, a); err != nil || d <= 0 {
		t.Fatalf("charge model wrapper: %v %v", d, err)
	}
	if len(WeekProfile(0.8, 0.17)) != 168 {
		t.Fatal("WeekProfile wrapper")
	}
	ws, err := FindMaintenanceWindows(WeekProfile(0.8, 0.17), 6, 0.75)
	if err != nil || len(ws) == 0 {
		t.Fatal("FindMaintenanceWindows wrapper")
	}

	// Figure 8 wrappers.
	if Figure8A().At(1) != 1 || Figure8B().At(0.5) != 0 || !Figure8C().Critical(0.95) {
		t.Fatal("Figure 8 wrappers")
	}

	// Policies.
	if (RoundRobinPolicy{}).Name() != "RoundRobin" || (FirstFitPolicy{}).Name() != "FirstFit" {
		t.Fatal("policy name wrappers")
	}
}
