package flex

import (
	"context"

	"flex/internal/emu"
	"flex/internal/sim"
)

// Experiment harnesses.
type (
	// RackInstance is one expanded physical rack of a placement.
	RackInstance = sim.Rack
	// Figure12Config drives the §V-B snapshot simulation.
	Figure12Config = sim.Figure12Config
	// Figure12Point is one utilization point of Figure 12.
	Figure12Point = sim.Figure12Point
	// EmulationConfig drives the §V-C end-to-end emulation.
	EmulationConfig = emu.Config
	// EmulationResult summarizes an emulation run.
	EmulationResult = emu.Result
	// FleetEmulationConfig drives the multi-room fleet emulation: N
	// replicas of the §V-C room on one virtual clock, one shard each,
	// with optional UPS failure and ingest-saturation injection.
	FleetEmulationConfig = emu.FleetConfig
	// FleetEmulationResult summarizes a fleet emulation run.
	FleetEmulationResult = emu.FleetResult
)

// ExpandRacks explodes a placement into physical racks.
func ExpandRacks(pl *Placement) []RackInstance { return sim.ExpandRacks(pl) }

// ManagedRacks converts racks to the controller representation.
func ManagedRacks(racks []RackInstance) []ManagedRack { return sim.ManagedRacks(racks) }

// RunFigure12 produces the Figure 12 series for one scenario.
func RunFigure12(cfg Figure12Config) ([]Figure12Point, error) { return sim.RunFigure12(cfg) }

// RunEmulation executes the Figure 13 end-to-end emulation without an
// external cancellation point.
//
// Deprecated: use RunEmulationContext.
func RunEmulation(cfg EmulationConfig) (*EmulationResult, error) {
	//flexlint:ignore ctxflow deprecated ctx-less facade shorthand; live callers use RunEmulationContext
	return emu.Run(context.Background(), cfg)
}

// RunEmulationContext executes the Figure 13 end-to-end emulation. ctx
// bounds the offline placement solve and every controller planning pass.
func RunEmulationContext(ctx context.Context, cfg EmulationConfig) (*EmulationResult, error) {
	return emu.Run(ctx, cfg)
}

// RunFleetEmulationContext executes the multi-room fleet emulation: it
// solves one §V-C placement, replicates it across cfg.Rooms fault
// domains under one sharded fleet, fails one UPS mid-run, and reports
// detect/shed latency for the failed room plus the aggregated fleet
// snapshot. ctx bounds the placement solve and every shard planning
// pass.
func RunFleetEmulationContext(ctx context.Context, cfg FleetEmulationConfig) (*FleetEmulationResult, error) {
	return emu.RunFleet(ctx, cfg)
}
