package flex

import (
	"net/http"
	"time"

	"flex/internal/fleet"
)

// Fleet layer: Flex-Online scaled to many rooms. One controller shard
// per UPS fault domain, batched telemetry ingest through bounded
// drop-oldest queues, and a global aggregator folding shard snapshots
// into fleet-wide stranded power (Eq. 5), committed headroom, and
// per-room health.
type (
	// Fleet is the sharded multi-room Flex-Online layer.
	Fleet = fleet.Fleet
	// FleetConfig assembles a Fleet; zero values select defaults.
	FleetConfig = fleet.Config
	// FleetRoomConfig describes one UPS fault domain joining the fleet.
	// (RoomConfig already names the topology configuration.)
	FleetRoomConfig = fleet.RoomConfig
	// FleetShard is one room's controller shard: its telemetry views,
	// ingest queues and Flex-Online primaries.
	FleetShard = fleet.Shard
	// FleetSnapshot is the aggregator's fleet-wide fold.
	FleetSnapshot = fleet.Snapshot
	// FleetRoomStatus is one room's slice of a FleetSnapshot.
	FleetRoomStatus = fleet.RoomStatus
	// FleetEpisodeTrace is one overdraw episode's stitched stage
	// waterfall, as served at /fleet/traces.
	FleetEpisodeTrace = fleet.EpisodeTrace
	// FleetStageSummary is a fleet-wide per-stage latency digest with an
	// exemplar join back to the flight recorder.
	FleetStageSummary = fleet.StageSummary
)

// FleetOption customizes NewFleet.
type FleetOption func(*FleetConfig)

// WithFleetQueueDepth sets each shard's per-topic ingest buffer in
// samples (default 1024). When a shard falls behind, its oldest queued
// samples are dropped and counted — backpressure never reaches the
// publisher or other shards.
func WithFleetQueueDepth(n int) FleetOption {
	return func(c *FleetConfig) { c.QueueDepth = n }
}

// WithAggregateEvery sets the aggregator cadence (default 2s) — how
// often per-shard snapshots fold into the fleet snapshot. Aggregation is
// deliberately slower than the shard control loops; the 10s budget never
// depends on it.
func WithAggregateEvery(d time.Duration) FleetOption {
	return func(c *FleetConfig) { c.AggregateEvery = d }
}

// WithFleetFreshness sets how stale a shard's UPS telemetry may get
// before the shard reports degraded (default 5s).
func WithFleetFreshness(d time.Duration) FleetOption {
	return func(c *FleetConfig) { c.Freshness = d }
}

// WithFleetConfig applies an arbitrary edit to the assembled FleetConfig
// — the escape hatch for knobs without a dedicated option (clock, obs
// registry, recorder).
func WithFleetConfig(edit func(*FleetConfig)) FleetOption {
	return FleetOption(edit)
}

// NewFleet creates an empty fleet from the config plus options. Add
// fault domains with Fleet.AddRoom, feed telemetry through the returned
// shards' IngestUPS/IngestRacks (or Fleet.Ingest by name), and read the
// global view with Fleet.Snapshot. Shards run synchronously (Pump +
// StepContext on a virtual clock) or as goroutine loops
// (Start/Drain/Stop); Fleet.RunAggregator maintains the fleet snapshot
// in live mode, and Fleet.Handler serves it as the /fleet endpoint.
func NewFleet(cfg FleetConfig, opts ...FleetOption) *Fleet {
	for _, o := range opts {
		o(&cfg)
	}
	return fleet.New(cfg)
}

// FleetHandler returns f's /fleet HTTP handler: the aggregated snapshot
// as JSON, with ?room=NAME narrowing to one room's status. Mount it via
// obs.ServerConfig.Fleet.
func FleetHandler(f *Fleet) http.Handler { return f.Handler() }

// FleetTracesHandler returns f's /fleet/traces HTTP handler: stitched
// per-episode stage waterfalls plus the fleet stage digests as JSON,
// with ?episode=N and ?limit=K filters. Mount it via
// obs.ServerConfig.FleetTraces.
func FleetTracesHandler(f *Fleet) http.Handler { return f.TracesHandler() }
