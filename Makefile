# Flex — zero-reserved-power datacenters (ISCA 2021 reproduction).

GO ?= go

.PHONY: all build vet lint lint-json test race cover bench bench-solver bench-obs bench-fleet bench-online bench-latency figures fuzz examples replay-smoke slo-smoke fleet-smoke latency-smoke online-smoke ci clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific static analysis: the interprocedural flexlint suite —
# clock hygiene, context-budget flow, allocation-free hot paths, lock
# ordering, float equality, unit mixing, lock discipline, flight-recorder
# emission discipline, discarded shed-critical errors. See DESIGN.md
# ("Static analysis") and internal/analysis.
lint:
	$(GO) run ./cmd/flexlint ./...

# Same suite, machine-readable findings (what the CI lint job runs).
lint-json:
	$(GO) run ./cmd/flexlint -json ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Records a compressed UPS-failure episode with the flight recorder and
# replays it: the replayed planning decisions must match the recorded
# ones exactly (empty diff), or flexreplay exits non-zero.
replay-smoke:
	$(GO) run ./cmd/flexsim -experiment episode -record /tmp/flex-episode.jsonl
	$(GO) run ./cmd/flexreplay -min-plans 1 /tmp/flex-episode.jsonl

# Runs a compressed UPS-failure episode with the continuous safety
# auditor attached and asserts the SLO story end to end: health goes
# ready→degraded→ready (never unsafe), the shed budget burns and
# recovers, and every steady-state what-if probe round is clean.
# flexsim exits non-zero if any of that fails.
slo-smoke:
	$(GO) run ./cmd/flexsim -experiment episode -slo

# Runs the 10-room sharded fleet emulation and asserts the fleet smoke
# criteria: every shard ready in the final snapshot, aggregate stranded
# power equal to the sum of per-room Eq. 5, the failed room shed within
# the 10s budget, zero cross-shard drops. flexsim exits non-zero on any
# violation.
fleet-smoke:
	$(GO) run ./cmd/flexsim -experiment fleet -rooms 10

# Runs the 10-room fleet emulation with latency attribution asserted
# (flexsim -latency): the failed room's overdraw must surface as a
# stitched per-episode waterfall at /fleet/traces whose stage durations
# tile the episode span, the waterfall must reconcile with the measured
# detect→shed latency, every stage p99 must sit inside its carve of the
# 10s budget, and the stage exemplars must resolve to flight-recorder
# events. flexsim exits non-zero on any violation.
latency-smoke:
	$(GO) run ./cmd/flexsim -experiment fleet -rooms 10 -latency

# Runs the online-placement acceptance check (ISSUE 9) on the §V-C
# emulation trace: the online admitter must produce a safe placement
# (zero Eq. 2 / Eq. 4 violations) whose stranded power is within 10
# percentage points of the Flex-Offline optimum. Re-solves run inline, so
# the check is deterministic; flexplace exits non-zero on any violation.
online-smoke:
	$(GO) run ./cmd/flexplace -smoke

# What CI runs (.github/workflows/ci.yml): the full gate plus a race pass
# over the concurrent packages (./internal/obs/... covers obs/tsdb and
# obs/slo; ./internal/fleet covers the shard lifecycle and isolation
# stress; ./internal/placement/online covers the admitter's concurrent
# admit/remove against the background resolver), a flexmon smoke run with
# the observability surface enabled, the record→replay determinism check,
# the SLO smoke episode, the fleet smoke emulation, and the
# latency-attribution smoke, and the online-placement acceptance smoke.
ci: build vet lint test replay-smoke slo-smoke fleet-smoke latency-smoke online-smoke
	$(GO) test -race ./internal/telemetry/... ./internal/controller/... ./internal/rackmgr/... ./internal/obs/... ./internal/replay/... ./internal/milp/... ./internal/lp/... ./internal/fleet/... ./internal/emu/... ./internal/placement/online/
	$(GO) run ./cmd/flexmon -quick -metrics -listen 127.0.0.1:0

cover:
	$(GO) test -cover ./...

# Records a performance baseline: one iteration of every benchmark,
# parsed into benchstat-reconstructable JSON (cmd/benchjson). Compare a
# later run with:
#   go test -run '^$$' -bench . -benchmem -benchtime 1x . > new.txt
#   $(GO) run ./cmd/benchjson -restore BENCH_baseline.json | benchstat /dev/stdin new.txt
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x . | $(GO) run ./cmd/benchjson -o BENCH_baseline.json
	@echo wrote BENCH_baseline.json

# Records the solver-scaling baseline (BenchmarkSolverScaling: serial
# reference engine vs 1/2/4/8 frontier workers on the batch-placement
# ILP). Inspect the speedups with:
#   $(GO) run ./cmd/benchjson -speedup BENCH_solver.json
bench-solver:
	$(GO) test -run '^$$' -bench BenchmarkSolverScaling -benchtime 3x . | $(GO) run ./cmd/benchjson -o BENCH_solver.json
	@echo wrote BENCH_solver.json

# Records the observability hot-path baseline: tsdb append/seal/query and
# SLO audit-tick/probe benchmarks across both packages (benchjson tags
# each record with its package). The Append rows must stay at
# 0 allocs/op — the sampler runs on the emulation tick.
bench-obs:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 100x ./internal/obs/tsdb/ ./internal/obs/slo/ | $(GO) run ./cmd/benchjson -o BENCH_obs.json
	@echo wrote BENCH_obs.json

# Records the online-placement baseline (BenchmarkOnlinePlacement):
#   admit        — hot-path decision throughput on the full 9.6MW paper
#                  room; must stay ≥ 1000 decisions/s (the benchmark
#                  itself fails below) at 0 allocs/op.
#   stranded-gap — stranded power of the online policy minus the
#                  FlexOffline optimum on the §V-C trace, in percentage
#                  points (gap-pp); must stay ≤ 10pp.
# Track the quality metrics across changes with either:
#   $(GO) run ./cmd/benchjson -compare BENCH_online.json BENCH_online.new.json
# or the benchstat recipe shared by every bench target:
#   go test -run '^$$' -bench BenchmarkOnlinePlacement -benchmem -benchtime 2000x ./internal/placement/online/ > new.txt
#   $(GO) run ./cmd/benchjson -restore BENCH_online.json | benchstat /dev/stdin new.txt
bench-online:
	$(GO) test -run '^$$' -bench BenchmarkOnlinePlacement -benchmem -benchtime 2000x ./internal/placement/online/ | $(GO) run ./cmd/benchjson -o BENCH_online.json
	@echo wrote BENCH_online.json

# Records the fleet-scaling baseline (BenchmarkFleetDetectToShed: the
# detect→shed latency of a UPS failure with 1/10/100 rooms riding on one
# virtual clock). The shed-s/op column is virtual-clock seconds and must
# stay under the 10s FlexLatencyBudget at every room count — the
# benchmark itself fails otherwise.
bench-fleet:
	$(GO) test -run '^$$' -bench BenchmarkFleetDetectToShed -benchtime 3x ./internal/emu/ | $(GO) run ./cmd/benchjson -o BENCH_fleet.json
	@echo wrote BENCH_fleet.json

# Records the latency-attribution baseline (BenchmarkFleetStageLatency:
# per-stage p50/p99 of the detect→shed critical path, virtual-clock
# seconds, at 1/10/100 rooms). Every stage p99 must stay inside its
# carve of the 10s budget — the benchmark itself fails otherwise. Diff
# two captures (each stamped with its commit and capture time) with:
#   $(GO) run ./cmd/benchjson -compare BENCH_latency.json BENCH_latency.new.json
bench-latency:
	$(GO) test -run '^$$' -bench BenchmarkFleetStageLatency -benchtime 3x ./internal/emu/ | $(GO) run ./cmd/benchjson -o BENCH_latency.json
	@echo wrote BENCH_latency.json

# Regenerates every figure/result of the paper's evaluation.
figures:
	$(GO) test -bench=. -benchmem ./...

fuzz:
	$(GO) test -fuzz=FuzzReadTrace -fuzztime=30s -run=Fuzz .
	$(GO) test -fuzz=FuzzImpactFunction -fuzztime=30s -run=Fuzz .

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/capacityplanning
	$(GO) run ./examples/costsavings
	$(GO) run ./examples/yearinthelife
	$(GO) run ./examples/telemetrypipeline
	$(GO) run ./examples/failover

clean:
	$(GO) clean -testcache
