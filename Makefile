# Flex — zero-reserved-power datacenters (ISCA 2021 reproduction).

GO ?= go

.PHONY: all build vet lint test race cover bench fuzz examples ci clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific static analysis: clock hygiene, float equality, unit
# mixing, lock discipline, discarded shed-critical errors. See DESIGN.md
# ("Static analysis & correctness tooling") and internal/analysis.
lint:
	$(GO) run ./cmd/flexlint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# What CI runs (.github/workflows/ci.yml): the full gate plus a race pass
# over the concurrent packages.
ci: build vet lint test
	$(GO) test -race ./internal/telemetry/... ./internal/controller/... ./internal/rackmgr/...

cover:
	$(GO) test -cover ./...

# Regenerates every figure/result of the paper's evaluation.
bench:
	$(GO) test -bench=. -benchmem ./...

fuzz:
	$(GO) test -fuzz=FuzzReadTrace -fuzztime=30s -run=Fuzz .
	$(GO) test -fuzz=FuzzImpactFunction -fuzztime=30s -run=Fuzz .

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/capacityplanning
	$(GO) run ./examples/costsavings
	$(GO) run ./examples/yearinthelife
	$(GO) run ./examples/telemetrypipeline
	$(GO) run ./examples/failover

clean:
	$(GO) clean -testcache
