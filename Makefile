# Flex — zero-reserved-power datacenters (ISCA 2021 reproduction).

GO ?= go

.PHONY: all build vet test race cover bench fuzz examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Regenerates every figure/result of the paper's evaluation.
bench:
	$(GO) test -bench=. -benchmem ./...

fuzz:
	$(GO) test -fuzz=FuzzReadTrace -fuzztime=30s -run=Fuzz .
	$(GO) test -fuzz=FuzzImpactFunction -fuzztime=30s -run=Fuzz .

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/capacityplanning
	$(GO) run ./examples/costsavings
	$(GO) run ./examples/yearinthelife
	$(GO) run ./examples/telemetrypipeline
	$(GO) run ./examples/failover

clean:
	$(GO) clean -testcache
