package flex

import (
	"context"
	"time"

	"flex/internal/clock"
	"flex/internal/controller"
	"flex/internal/rackmgr"
)

// Flex-Online types.
type (
	// ManagedRack is a rack under Flex-Online control.
	ManagedRack = controller.ManagedRack
	// PlannedAction is one corrective action chosen by Algorithm 1.
	PlannedAction = controller.PlannedAction
	// PlanInput is the snapshot Algorithm 1 plans from.
	PlanInput = controller.PlanInput
	// Controller is one Flex-Online primary.
	Controller = controller.Controller
	// ControllerConfig assembles a Controller.
	ControllerConfig = controller.Config
	// RackManager is the actuator enforcing shutdown/throttle/restore
	// actions on racks.
	RackManager = rackmgr.Manager
)

// Action kinds.
const (
	ActionShutdown = controller.Shutdown
	ActionThrottle = controller.Throttle
)

// NewRackManager creates an actuator over the given rack IDs on the real
// clock; all racks start powered on and reachable.
func NewRackManager(rackIDs []string) *RackManager {
	return rackmgr.NewManager(clock.Real{}, rackIDs)
}

// PlanActions runs the paper's Algorithm 1 on a power snapshot.
//
// Deprecated: use PlanActionsContext, which adds a cancellation point per
// greedy iteration.
func PlanActions(in PlanInput) (actions []PlannedAction, insufficient bool, err error) {
	return controller.Plan(in)
}

// PlanActionsContext is the context-first form of PlanActions, with a
// cancellation point per greedy iteration; on expiry it returns the
// truncated plan with context.Cause(ctx).
func PlanActionsContext(ctx context.Context, in PlanInput) (actions []PlannedAction, insufficient bool, err error) {
	return controller.PlanContext(ctx, in)
}

// ControllerOption customizes NewOnlineController.
type ControllerOption func(*ControllerConfig)

// WithControllerName names the controller primary (events, traces and
// metrics are tagged with it). The default is "flex-online".
func WithControllerName(name string) ControllerOption {
	return func(c *ControllerConfig) { c.Name = name }
}

// WithTelemetryViews wires the freshest-power views the controller reads;
// feed them from Pipeline.SubscribeAll or a fleet shard.
func WithTelemetryViews(ups, rack *LatestPower) ControllerOption {
	return func(c *ControllerConfig) {
		c.UPSView = ups
		c.RackView = rack
	}
}

// WithRackEstimator plans from §IV-D time-series estimates instead of the
// raw rack snapshot.
func WithRackEstimator(est *EWMAEstimator) ControllerOption {
	return func(c *ControllerConfig) { c.RackEstimator = est }
}

// WithActuator wires the rack actuator that enforces planned actions.
func WithActuator(m *RackManager) ControllerOption {
	return func(c *ControllerConfig) { c.Actuator = m }
}

// WithScenario sets the impact scenario guiding Algorithm 1. The default
// is ScenarioDefault.
func WithScenario(s Scenario) ControllerOption {
	return func(c *ControllerConfig) { c.Scenario = s }
}

// WithSafetyBuffer sets the margin below UPS capacity the controller
// sheds down to. The default is 1% of the smallest UPS capacity.
func WithSafetyBuffer(w Watts) ControllerOption {
	return func(c *ControllerConfig) { c.Buffer = w }
}

// WithEvaluationInterval sets the controller's evaluation period. The
// default 500ms keeps detection plus action well inside the 10s budget.
func WithEvaluationInterval(d time.Duration) ControllerOption {
	return func(c *ControllerConfig) { c.Interval = d }
}

// WithPlanBudget bounds one Algorithm 1 planning pass. The default is
// half of FlexLatencyBudget, leaving the other half for actuation.
func WithPlanBudget(d time.Duration) ControllerOption {
	return func(c *ControllerConfig) { c.PlanBudget = d }
}

// WithControllerConfig applies an arbitrary edit to the assembled
// ControllerConfig — the escape hatch for knobs without a dedicated
// option (clock, metrics, tracer, recorder).
func WithControllerConfig(edit func(*ControllerConfig)) ControllerOption {
	return ControllerOption(edit)
}

// NewOnlineController creates a Flex-Online controller primary for the
// topology and managed racks, with With* options for the remaining
// collaborators and knobs. Without options the controller runs on the
// real clock with the paper's default cadence, buffer and scenario; wire
// WithTelemetryViews and WithActuator to make it operational.
func NewOnlineController(topo *Topology, racks []ManagedRack, opts ...ControllerOption) *Controller {
	cfg := ControllerConfig{Topo: topo, Racks: racks}
	for _, o := range opts {
		o(&cfg)
	}
	return controller.New(cfg)
}

// NewController creates a Flex-Online controller primary from a fully
// assembled config.
//
// Deprecated: use NewOnlineController(topo, racks, opts...).
func NewController(cfg ControllerConfig) *Controller { return controller.New(cfg) }
