package flex

import (
	"context"
	"errors"
	"math"
	"testing"
)

// TestSolveMILPFacade drives the re-exported solver surface end to end:
// build a problem with the facade types, solve it under a context, and
// check the status/stop constants line up.
func TestSolveMILPFacade(t *testing.T) {
	p := &MILPProblem{
		LP:      LinearProblem{Maximize: true, Objective: []float64{60, 100, 120}},
		Integer: []bool{true, true, true},
	}
	for j := 0; j < 3; j++ {
		unit := make([]float64, 3)
		unit[j] = 1
		p.LP.AddConstraint(unit, LE, 1)
	}
	p.LP.AddConstraint([]float64{10, 20, 30}, LE, 50)

	r, err := SolveMILP(context.Background(), p, SolveOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != SolveOptimal || r.Stop != StopNone {
		t.Fatalf("status=%v stop=%v", r.Status, r.Stop)
	}
	if math.Abs(r.Objective-220) > 1e-9 {
		t.Fatalf("objective = %v, want 220", r.Objective)
	}

	cause := errors.New("abort")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)
	r, err = SolveMILP(ctx, p, SolveOptions{})
	if !errors.Is(err, cause) || r.Stop != StopCanceled {
		t.Fatalf("err=%v stop=%v, want cause+StopCanceled", err, r.Stop)
	}
}

// TestBatchPlacementILP checks the exported problem builder produces the
// real Flex-Offline formulation: solvable, and with one assignment block
// per deployment.
func TestBatchPlacementILP(t *testing.T) {
	room := PaperRoom()
	trace, err := GenerateTrace(DefaultTraceConfig(room.Topo.ProvisionedPower()), 3)
	if err != nil {
		t.Fatal(err)
	}
	batch := trace[:6]
	p := BatchPlacementILP(room, batch)
	if p.LP.NumVars() == 0 || len(p.Integer) != p.LP.NumVars() {
		t.Fatalf("malformed problem: %d vars, %d-entry mask", p.LP.NumVars(), len(p.Integer))
	}
	r, err := SolveMILP(context.Background(), p, SolveOptions{Deterministic: true, MaxNodes: 400})
	if err != nil {
		t.Fatal(err)
	}
	if r.X == nil {
		t.Fatalf("no feasible batch placement found (status %v)", r.Status)
	}
}

// TestNewRedundantTopology covers the functional-options constructor and
// its paper defaults.
func TestNewRedundantTopology(t *testing.T) {
	topo, err := NewRedundantTopology(Redundancy{X: 4, Y: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := topo.ProvisionedPower(); got != 9.6*MW {
		t.Fatalf("default provisioned = %v, want 9.6MW", got)
	}
	if len(topo.Pairs) != 18 {
		t.Fatalf("default pairs = %d, want 18", len(topo.Pairs))
	}

	topo, err = NewRedundantTopology(Redundancy{X: 4, Y: 3},
		WithUPSCapacity(1.2*MW), WithPairsPerCombination(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := topo.ProvisionedPower(); got != 4.8*MW {
		t.Fatalf("provisioned = %v, want 4.8MW", got)
	}
	if len(topo.Pairs) != 6 {
		t.Fatalf("pairs = %d, want 6", len(topo.Pairs))
	}
}
