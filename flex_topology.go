package flex

import (
	"flex/internal/power"
)

// Power and topology types.
type (
	// Watts is electrical power in watts.
	Watts = power.Watts
	// Redundancy is an xN/y distributed-redundancy design.
	Redundancy = power.Redundancy
	// Topology is a room's electrical topology (UPSes and PDU-pairs).
	Topology = power.Topology
	// UPSID identifies a UPS within a topology.
	UPSID = power.UPSID
	// PDUPairID identifies a PDU-pair within a topology.
	PDUPairID = power.PDUPairID
	// PairLoad is power per PDU-pair.
	PairLoad = power.PairLoad
	// TripCurve is a UPS overload tolerance curve (Figure 6).
	TripCurve = power.TripCurve
	// RoomConfig configures NewTopology.
	RoomConfig = power.RoomConfig
)

// Power unit constants.
const (
	KW = power.KW
	MW = power.MW
)

// FlexLatencyBudget is the 10-second end-to-end deadline for Flex-Online.
const FlexLatencyBudget = power.FlexLatencyBudget

// CapacityTolerance is the slack applied to capacity comparisons so that
// float rounding never flips a feasibility verdict.
const CapacityTolerance = power.CapacityTolerance

// NewTopology builds an xN/y room topology (see power.NewRoom).
//
// The zero RoomConfig is invalid (capacity and pair count must be set);
// prefer NewRedundantTopology, which starts from the paper's defaults.
func NewTopology(cfg RoomConfig) (*Topology, error) { return power.NewRoom(cfg) }

// TopologyOption customizes NewRedundantTopology.
type TopologyOption func(*RoomConfig)

// WithUPSCapacity sets each UPS's rated capacity. The default is the
// paper's 2.4 MW evaluation UPS.
func WithUPSCapacity(w Watts) TopologyOption {
	return func(c *RoomConfig) { c.UPSCapacity = w }
}

// WithPairsPerCombination sets how many PDU-pairs to instantiate per
// unordered UPS combination. The default is the paper's 3 (18 pairs for
// 4N/3).
func WithPairsPerCombination(n int) TopologyOption {
	return func(c *RoomConfig) { c.PairsPerCombination = n }
}

// NewRedundantTopology builds an xN/y distributed-redundant topology from
// the design plus options, defaulting the remaining knobs to the paper's
// §V-A room (2.4 MW UPSes, 3 PDU-pairs per combination). Unlike the bare
// RoomConfig accepted by NewTopology, every combination of options yields
// a fully specified configuration.
func NewRedundantTopology(design Redundancy, opts ...TopologyOption) (*Topology, error) {
	cfg := RoomConfig{Design: design, UPSCapacity: 2.4 * MW, PairsPerCombination: 3}
	for _, o := range opts {
		o(&cfg)
	}
	return power.NewRoom(cfg)
}

// EndOfLifeTripCurve is the conservative UPS tolerance curve Flex designs
// against (10 s at the worst-case 133% failover load).
func EndOfLifeTripCurve() TripCurve { return power.EndOfLifeTripCurve }

// BeginOfLifeTripCurve is the fresh-battery tolerance curve.
func BeginOfLifeTripCurve() TripCurve { return power.BeginOfLifeTripCurve }
